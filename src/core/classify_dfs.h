// Internal: the implicit-enumeration DFS core shared by the serial and
// parallel classification engines (core/classify.cpp and
// core/classify_parallel.cpp).  Not part of the public API.
//
// The classification frontier is sharded into *seeds*: one DFS subtree
// per (primary input, final stable value, first fanout lead) triple.
// Seeds are completely independent — each run starts from a fresh
// implication-engine state (only the PI assignment), so they can be
// executed in any order or concurrently, and their outputs merged in
// canonical seed order reproduce the classic single-threaded DFS
// bit for bit:
//
//   * kept/work counters are sums of per-seed counters (commutative),
//   * kept_controlling_per_lead is an elementwise sum,
//   * kept_keys concatenated in seed order equal the serial DFS
//     discovery order, so truncation at collect_paths_limit matches.
//
// Work accounting is abstracted behind a Budget policy with a single
// charge() hook called once per DFS gate-extension step — exactly the
// points where the classic engine incremented ClassifyResult::work —
// so the serial counter and the parallel shared atomic counter observe
// the same step stream.
//
// Compiled hot path (DESIGN.md §9): the DFS runs over a
// CompiledCircuit — CSR adjacency, predecoded gate semantics, and the
// static per-lead side-input tables — built once per run and shared
// read-only by every worker.  Two further optimizations preserve the
// exact counter streams of the pre-compilation engine:
//
//   * PI-prefix sharing: all seeds of one (primary input, final value)
//     pair start from the identical one-assignment engine state, so a
//     driver re-establishes it only when the pair changes and
//     otherwise *replays* the recorded ImplicationStats delta of the
//     cached assignment — the counters advance exactly as if the
//     assignment had been re-propagated;
//   * guard striding: SerialBudget polls its ExecGuard once every
//     kGuardStride charges (passing the accumulated step count, so the
//     guard's work counter stays exact) plus a flush at every seed
//     boundary, instead of a poll per DFS step.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/classify.h"
#include "netlist/compiled.h"
#include "sim/implication.h"

namespace rd::internal {

/// One unit of shardable classification work: grow paths that start at
/// primary input `pi` with final stable value `final_value` and leave
/// it through `first_lead`.
struct ClassifySeed {
  GateId pi = kNullGate;
  bool final_value = false;
  LeadId first_lead = kNullLead;
};

/// Canonical seed order: circuit PI order, then final value
/// {false, true}, then the PI's fanout-lead order.  The serial DFS
/// visits seeds exactly in this order.
inline std::vector<ClassifySeed> enumerate_seeds(const Circuit& circuit) {
  std::vector<ClassifySeed> seeds;
  for (GateId pi : circuit.inputs())
    for (const bool final_value : {false, true})
      for (LeadId lead : circuit.gate(pi).fanout_leads)
        seeds.push_back(ClassifySeed{pi, final_value, lead});
  return seeds;
}

/// Compiles `circuit` for the DFS under `options`: the π side-input
/// tables are included exactly when the criterion consults them.
inline CompiledCircuit compile_for_classify(const Circuit& circuit,
                                            const ClassifyOptions& options) {
  if (options.criterion == Criterion::kInputSort) {
    if (options.sort == nullptr)
      throw std::invalid_argument("kInputSort requires an InputSort");
    const InputSort* sort = options.sort;
    return CompiledCircuit(
        circuit, [sort](GateId gate, std::uint32_t a, std::uint32_t b) {
          return sort->before(gate, a, b);
        });
  }
  return CompiledCircuit(circuit);
}

/// Serial work budget: the classic `++work > limit` abort check, plus
/// an optional ExecGuard.  The work limit is evaluated on every charge
/// (the completed/aborted verdict stays exact to the step); the guard
/// is polled once per kGuardStride charges with the accumulated step
/// count — its work counter advances by the same total, only in
/// batches — and flushed at seed boundaries by the run loop.
class SerialBudget {
 public:
  explicit SerialBudget(std::uint64_t limit, ExecGuard* guard = nullptr)
      : limit_(limit), guard_(guard) {}

  /// Charges one DFS step; false once the budget is exhausted or the
  /// guard has tripped.
  bool charge() {
    if (++used_ > limit_) {
      if (reason_ == AbortReason::kNone) reason_ = AbortReason::kWorkBudget;
      return false;
    }
    if (guard_ == nullptr) return true;
    if (guard_tripped_) return false;
    if (++unpolled_ >= kGuardStride) return poll_guard();
    return true;
  }

  /// Publishes the charges accumulated since the last poll (call at
  /// seed boundaries, so the guard's work counter is exact between
  /// seeds).  Returns false if the guard has tripped.
  bool flush() {
    if (guard_ == nullptr) return true;
    if (guard_tripped_) return false;
    if (unpolled_ == 0) return true;
    return poll_guard();
  }

  std::uint64_t used() const { return used_; }

  /// First trip cause (kNone while charging succeeds).
  AbortReason reason() const { return reason_; }

  ExecGuard* guard() const { return guard_; }

 private:
  static constexpr std::uint64_t kGuardStride = 64;

  bool poll_guard() {
    const std::uint64_t batch = unpolled_;
    unpolled_ = 0;
    if (guard_->check(batch)) return true;
    guard_tripped_ = true;
    if (reason_ == AbortReason::kNone) reason_ = guard_->reason();
    return false;
  }

  std::uint64_t limit_;
  ExecGuard* guard_;
  std::uint64_t used_ = 0;
  std::uint64_t unpolled_ = 0;
  bool guard_tripped_ = false;
  AbortReason reason_ = AbortReason::kNone;
};

/// Shared work budget for concurrent workers: steps accumulate into one
/// atomic total (flushed in batches to keep the hot path cheap), and
/// the first flush that pushes the total past the limit raises a
/// cooperative cancellation flag every worker polls on each step.  The
/// completed/aborted verdict is deterministic — it depends only on
/// whether the full (thread-count-independent) step total exceeds the
/// limit — even though the partial counts at the abort point are not.
class SharedBudget {
 public:
  /// State shared by all workers of one classification run.
  struct Shared {
    explicit Shared(std::uint64_t limit, ExecGuard* guard = nullptr)
        : limit(limit), guard(guard) {}
    const std::uint64_t limit;
    ExecGuard* const guard;
    std::atomic<std::uint64_t> total{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint8_t> reason{
        static_cast<std::uint8_t>(AbortReason::kNone)};

    /// First-wins abort cause shared by every worker.
    void record(AbortReason cause) {
      std::uint8_t expected = static_cast<std::uint8_t>(AbortReason::kNone);
      reason.compare_exchange_strong(expected,
                                     static_cast<std::uint8_t>(cause),
                                     std::memory_order_relaxed);
      cancelled.store(true, std::memory_order_relaxed);
    }

    AbortReason abort_reason() const {
      return static_cast<AbortReason>(reason.load(std::memory_order_relaxed));
    }
  };

  explicit SharedBudget(Shared& shared) : shared_(&shared) {}

  bool charge() {
    if (++unflushed_ >= kFlushEvery) flush();
    return !shared_->cancelled.load(std::memory_order_relaxed);
  }

  /// Publishes locally counted steps; call at least once per seed.
  /// The ExecGuard is polled here, at flush granularity, so the hot
  /// path stays two increments and one relaxed load per step.
  void flush() {
    if (unflushed_ == 0) return;
    const std::uint64_t before =
        shared_->total.fetch_add(unflushed_, std::memory_order_relaxed);
    if (before + unflushed_ > shared_->limit)
      shared_->record(AbortReason::kWorkBudget);
    if (shared_->guard != nullptr && !shared_->guard->check(unflushed_))
      shared_->record(shared_->guard->reason());
    unflushed_ = 0;
  }

  ExecGuard* guard() const { return shared_->guard; }

 private:
  static constexpr std::uint64_t kFlushEvery = 512;
  Shared* shared_;
  std::uint64_t unflushed_ = 0;
};

/// DFS driver for one worker (or the single serial thread).  Owns a
/// private ImplicationEngine — the thread-local implication invariant:
/// no implication state is ever shared between workers — over the
/// run-shared read-only CompiledCircuit, and is reused across the
/// seeds a worker processes.  The (pi, final value) assignment prefix
/// is kept on the engine between seeds of the same pair and its
/// recorded stats delta replayed on reuse, so the cumulative counters
/// equal a per-seed re-initialization bit for bit.
template <class Budget>
class SeedDfs {
 public:
  /// Per-seed outputs that must be merged in canonical seed order.
  struct SeedOutcome {
    std::uint64_t kept_paths = 0;
    std::uint64_t work = 0;
    std::vector<std::vector<std::uint32_t>> kept_keys;
    bool exhausted = false;  // budget ran out inside this seed
  };

  /// `lead_counts`, when non-null, accumulates the per-lead
  /// controlling-value survivor tallies (order-independent sums, so a
  /// per-worker accumulator merges deterministically).
  SeedDfs(const CompiledCircuit& compiled, const ClassifyOptions& options,
          Budget& budget, std::vector<std::uint64_t>* lead_counts)
      : compiled_(compiled),
        options_(options),
        budget_(budget),
        lead_counts_(lead_counts),
        engine_(compiled, options.backward_implications) {
    if (options.criterion == Criterion::kInputSort &&
        !compiled.has_low_order_tables())
      throw std::invalid_argument(
          "kInputSort requires a circuit compiled with its InputSort");
  }

  /// Implication-engine event counters accumulated over every seed
  /// this driver has run (observability; merged by summation).
  const ImplicationStats& implication_stats() const {
    return engine_.stats();
  }

  /// Runs one seed subtree.  `max_keys` caps this seed's kept_keys
  /// collection (the caller threads the global collect_paths_limit
  /// through it).
  SeedOutcome run_seed(const ClassifySeed& seed, std::uint64_t max_keys) {
    outcome_ = SeedOutcome{};
    max_keys_ = max_keys;
    current_final_pi_value_ = seed.final_value;
    ensure_prefix(seed.pi, seed.final_value);
    if (prefix_ok_) {
      const std::size_t mark = engine_.mark();
      if (!extend_through(seed.first_lead, seed.final_value))
        outcome_.exhausted = true;
      engine_.undo_to(mark);
    }
    return std::move(outcome_);
  }

 private:
  /// Leaves the engine holding exactly the (pi, value) assignment (and
  /// its implications).  On a cache hit the assignment is not re-run;
  /// the recorded stats delta is replayed instead, so the cumulative
  /// engine counters match a from-scratch re-assignment exactly.
  void ensure_prefix(GateId pi, bool final_value) {
    if (prefix_valid_ && prefix_pi_ == pi && prefix_value_ == final_value) {
      engine_.replay_stats(prefix_delta_);
      return;
    }
    engine_.reset();
    const ImplicationStats before = engine_.stats();
    prefix_ok_ = engine_.assign(pi, to_value3(final_value));
    prefix_delta_ = engine_.stats().delta_since(before);
    prefix_pi_ = pi;
    prefix_value_ = final_value;
    prefix_valid_ = true;
  }

  /// Extends the current segment through `lead_id`, whose driver has
  /// stable value `tip_value`.  Returns false when the budget is
  /// exhausted (serial) or the run is cancelled (parallel).
  bool extend_through(LeadId lead_id, bool tip_value) {
    ++outcome_.work;
    if (!budget_.charge()) return false;
    const CompiledLead& lead = compiled_.lead(lead_id);
    const std::size_t mark = engine_.mark();
    bool feasible = true;

    if (lead.sink_has_ctrl) {
      const bool nc = lead.sink_nc;
      if (tip_value == nc) {
        // (FU2)/(NR2)/(π2): every side input stable non-controlling.
        feasible = assign_side_inputs(compiled_.side_all_begin(lead),
                                      lead.side_all_count, nc);
      } else {
        switch (options_.criterion) {
          case Criterion::kFunctionalSensitizable:
            // (FU2) constrains only non-controlling on-path inputs.
            break;
          case Criterion::kNonRobust:
            // (NR2): all side inputs non-controlling.
            feasible = assign_side_inputs(compiled_.side_all_begin(lead),
                                          lead.side_all_count, nc);
            break;
          case Criterion::kInputSort:
            // (π3): low-order side inputs non-controlling.
            feasible = assign_side_inputs(compiled_.side_low_begin(lead),
                                          lead.side_low_count, nc);
            break;
        }
      }
    }

    bool ok = true;
    if (feasible) {
      // The sink's stable value is now implied: a controlling on-path
      // input forces the controlled output; a non-controlling one had
      // all side inputs pinned non-controlling.  Single-input gates
      // imply directly.
      const Value3 sink_value = engine_.value(lead.sink);
      segment_.push_back(lead_id);
      ok = extend(lead.sink, to_bool(sink_value));
      segment_.pop_back();
    }
    engine_.undo_to(mark);
    return ok;
  }

  /// Extends the current segment from tip gate `tip` with stable value
  /// `tip_value` through each of its fanout leads.
  bool extend(GateId tip, bool tip_value) {
    if (compiled_.semantics(tip).type == GateType::kOutput) {
      record_survivor();
      return true;
    }
    const LeadId* lead = compiled_.fanout_lead_begin(tip);
    const LeadId* end = lead + compiled_.fanout_count(tip);
    for (; lead != end; ++lead)
      if (!extend_through(*lead, tip_value)) return false;
    return true;
  }

  /// Asserts value `nc` on a precompiled side-input list (the static
  /// local-implication table row of one lead).  Returns false as soon
  /// as a local-implication conflict appears.
  bool assign_side_inputs(const GateId* gates, std::uint32_t count, bool nc) {
    const Value3 value = to_value3(nc);
    for (const GateId* gate = gates; gate != gates + count; ++gate)
      if (!engine_.assign(*gate, value)) return false;
    return true;
  }

  void record_survivor() {
    ++outcome_.kept_paths;
    if (outcome_.kept_keys.size() < max_keys_) {
      std::vector<std::uint32_t> key(segment_.begin(), segment_.end());
      key.push_back(current_final_pi_value_ ? 1u : 0u);
      // The collected keys are the one allocation that grows without
      // bound with the survivor count; feed the guard's arena
      // accounting so a memory ceiling can stop the collection.
      if (ExecGuard* guard = budget_.guard(); guard != nullptr)
        guard->add_memory(key.capacity() * sizeof(std::uint32_t) +
                          sizeof(key));
      outcome_.kept_keys.push_back(std::move(key));
    }
    if (lead_counts_ == nullptr) return;
    for (LeadId lead_id : segment_) {
      const CompiledLead& lead = compiled_.lead(lead_id);
      if (!lead.sink_has_ctrl) continue;
      const Value3 value = engine_.value(lead.driver);
      if (is_known(value) && to_bool(value) == !lead.sink_nc)
        ++(*lead_counts_)[lead_id];
    }
  }

  const CompiledCircuit& compiled_;
  const ClassifyOptions& options_;
  Budget& budget_;
  std::vector<std::uint64_t>* lead_counts_;
  ImplicationEngine engine_;
  std::vector<LeadId> segment_;
  SeedOutcome outcome_;
  std::uint64_t max_keys_ = 0;
  bool current_final_pi_value_ = false;

  // Shared-prefix cache: the (pi, final value) assignment currently
  // held on the engine, its conflict-free flag, and the stats delta it
  // cost when first established.
  bool prefix_valid_ = false;
  bool prefix_ok_ = false;
  GateId prefix_pi_ = kNullGate;
  bool prefix_value_ = false;
  ImplicationStats prefix_delta_;
};

/// Shared post-pass: structural totals and RD percentages.
inline void finish_classify_result(const Circuit& circuit,
                                   ClassifyResult* result) {
  const PathCounts counts(circuit);
  result->total_logical = counts.total_logical();
  if (result->completed) {
    result->rd_paths = result->total_logical - BigUint(result->kept_paths);
    // Guard the percentage against total_logical == 0 (no paths) and
    // against BigUint::to_double overflowing to infinity, where the
    // naive 100*inf/inf would poison rd_percent with NaN.
    const double total = result->total_logical.to_double();
    const double rd = result->rd_paths.to_double();
    double percent = 0.0;
    if (total > 0) {
      percent = std::isfinite(total) && std::isfinite(rd)
                    ? 100.0 * rd / total
                    : 100.0;  // totals beyond double range: rd dominates
    }
    result->rd_percent = std::isfinite(percent) ? percent : 0.0;
  }
}

}  // namespace rd::internal
