// Internal: the implicit-enumeration DFS core shared by the serial and
// parallel classification engines (core/classify.cpp and
// core/classify_parallel.cpp).  Not part of the public API.
//
// The unit of work is a *node of the shared path-prefix tree*: the
// serial engine runs one DFS subtree per (primary input, final stable
// value, first fanout lead) seed; the parallel engine cuts deeper, at
// subtree granularity (run_subtree + set_frontier_cut — DESIGN.md
// §10), so deep narrow circuits still shard.  Either way the outputs
// merged in canonical discovery order reproduce the classic
// single-threaded DFS bit for bit:
//
//   * kept/work counters are sums of per-node counters (commutative),
//   * kept_controlling_per_lead is an elementwise sum,
//   * kept keys concatenated in discovery order equal the serial DFS
//     order, so truncation at collect_paths_limit matches.
//
// Work accounting is abstracted behind a Budget policy with a single
// charge() hook called once per DFS gate-extension step — exactly the
// points where the classic engine incremented ClassifyResult::work —
// so the serial counter and the parallel shared atomic counter observe
// the same step stream.
//
// Compiled hot path (DESIGN.md §9): the DFS runs over a
// CompiledCircuit — CSR adjacency, predecoded gate semantics, and the
// static per-lead side-input tables — built once per run and shared
// read-only by every worker.  Two further optimizations preserve the
// exact counter streams of the pre-compilation engine:
//
//   * PI-prefix sharing: all seeds of one (primary input, final value)
//     pair start from the identical one-assignment engine state, so a
//     driver re-establishes it only when the pair changes and
//     otherwise *replays* the recorded ImplicationStats delta of the
//     cached assignment — the counters advance exactly as if the
//     assignment had been re-propagated;
//   * guard striding: SerialBudget polls its ExecGuard once every
//     kGuardStride charges (passing the accumulated step count, so the
//     guard's work counter stays exact) plus a flush at every seed
//     boundary, instead of a poll per DFS step.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/classify.h"
#include "netlist/compiled.h"
#include "paths/prefix_tree.h"
#include "sim/implication.h"
#include "sim/implication_bitpar.h"

namespace rd::internal {

/// One unit of shardable classification work: grow paths that start at
/// primary input `pi` with final stable value `final_value` and leave
/// it through `first_lead`.
struct ClassifySeed {
  GateId pi = kNullGate;
  bool final_value = false;
  LeadId first_lead = kNullLead;
};

/// Canonical seed order: circuit PI order, then final value
/// {false, true}, then the PI's fanout-lead order.  The serial DFS
/// visits seeds exactly in this order.
inline std::vector<ClassifySeed> enumerate_seeds(const Circuit& circuit) {
  std::vector<ClassifySeed> seeds;
  for (GateId pi : circuit.inputs())
    for (const bool final_value : {false, true})
      for (LeadId lead : circuit.gate(pi).fanout_leads)
        seeds.push_back(ClassifySeed{pi, final_value, lead});
  return seeds;
}

/// Compiles `circuit` for the DFS under `options`: the π side-input
/// tables are included exactly when the criterion consults them.
inline CompiledCircuit compile_for_classify(const Circuit& circuit,
                                            const ClassifyOptions& options) {
  if (options.criterion == Criterion::kInputSort) {
    if (options.sort == nullptr)
      throw std::invalid_argument("kInputSort requires an InputSort");
    const InputSort* sort = options.sort;
    return CompiledCircuit(
        circuit, [sort](GateId gate, std::uint32_t a, std::uint32_t b) {
          return sort->before(gate, a, b);
        });
  }
  return CompiledCircuit(circuit);
}

/// Resolves the compiled view a run should use: the caller-provided
/// options.compiled when set (validated against `circuit`; the serve
/// layer's cache hit path), else a fresh private compile parked in
/// `owned`.  The returned pointer is valid as long as `owned` and the
/// provided compiled circuit are.
inline const CompiledCircuit* resolve_compiled(
    const Circuit& circuit, const ClassifyOptions& options,
    std::unique_ptr<const CompiledCircuit>& owned) {
  if (options.compiled != nullptr) {
    if (&options.compiled->source() != &circuit)
      throw std::invalid_argument(
          "ClassifyOptions::compiled was built from a different Circuit");
    if (options.criterion == Criterion::kInputSort &&
        !options.compiled->has_low_order_tables())
      throw std::invalid_argument(
          "ClassifyOptions::compiled lacks the input sort's side tables");
    return options.compiled;
  }
  // Size-thresholded per-thread compile cache for the common
  // sort-free compile (every criterion except kInputSort shares one
  // view).  On microsecond circuits the private per-run compile is
  // comparable to the classification itself (bench_micro `example`
  // and `c17` rows), and callers that classify the same Circuit
  // repeatedly — benches, the CLI's validate double-run, tests — pay
  // it every time.  Keyed by Circuit::build_id(), which is process-
  // unique and dies with the circuit, so a stale slot can never be
  // hit; a finalized circuit is structurally immutable, so a hit is
  // bit-identical to a fresh compile and verdicts/stats are unchanged.
  // Two slots (insert-at-front LRU): a returned pointer stays valid
  // until the same thread misses twice more, and the drivers complete
  // synchronously before any caller could do that.  Large circuits
  // skip the cache — their compile is noise and the tables are worth
  // real memory.
  constexpr std::size_t kCompileCacheGateLimit = 1u << 14;
  if (options.criterion != Criterion::kInputSort &&
      circuit.num_gates() <= kCompileCacheGateLimit) {
    struct Slot {
      std::uint64_t build_id = 0;
      std::unique_ptr<const CompiledCircuit> compiled;
    };
    thread_local Slot slots[2];
    for (Slot& slot : slots)
      if (slot.compiled != nullptr && slot.build_id == circuit.build_id()) {
        if (&slot != &slots[0]) std::swap(slot, slots[0]);
        return slots[0].compiled.get();
      }
    slots[1] = std::move(slots[0]);
    slots[0].build_id = circuit.build_id();
    slots[0].compiled = std::make_unique<const CompiledCircuit>(
        compile_for_classify(circuit, options));
    return slots[0].compiled.get();
  }
  owned = std::make_unique<const CompiledCircuit>(
      compile_for_classify(circuit, options));
  return owned.get();
}

/// Resolves the static closure a run should use: null when the tier is
/// kOff, the caller-provided options.closure when set (validated
/// against the resolved compiled view; the serve/ECO cache hit path),
/// else a fresh private build parked in `owned`.  A private build
/// charges options.guard and honors options.closure_memory_mb; both
/// ceilings surface as GuardTrippedError(kMemory), which the drivers
/// convert to an aborted result.
inline const StaticClosure* resolve_closure(
    const CompiledCircuit& compiled, const ClassifyOptions& options,
    std::unique_ptr<const StaticClosure>& owned) {
  if (options.implications == ImplicationTier::kOff) return nullptr;
  if (options.closure != nullptr) {
    if (&options.closure->compiled() != &compiled)
      throw std::invalid_argument(
          "ClassifyOptions::closure was built over a different compiled "
          "circuit");
    if (options.closure->backward_implications() !=
        options.backward_implications)
      throw std::invalid_argument(
          "ClassifyOptions::closure was built with a different "
          "backward-implications mode");
    return options.closure;
  }
  ClosureBuildOptions build;
  build.memory_limit_mb = options.closure_memory_mb;
  build.guard = options.guard;
  build.backward_implications = options.backward_implications;
  owned = std::make_unique<const StaticClosure>(compiled, build);
  return owned.get();
}

/// Serial work budget: the classic `++work > limit` abort check, plus
/// an optional ExecGuard.  The work limit is evaluated on every charge
/// (the completed/aborted verdict stays exact to the step); the guard
/// is polled once per kGuardStride charges with the accumulated step
/// count — its work counter advances by the same total, only in
/// batches — and flushed at seed boundaries by the run loop.
class SerialBudget {
 public:
  explicit SerialBudget(std::uint64_t limit, ExecGuard* guard = nullptr)
      : limit_(limit), guard_(guard) {}

  /// Charges one DFS step; false once the budget is exhausted or the
  /// guard has tripped.
  bool charge() {
    if (++used_ > limit_) {
      if (reason_ == AbortReason::kNone) reason_ = AbortReason::kWorkBudget;
      return false;
    }
    if (guard_ == nullptr) return true;
    if (guard_tripped_) return false;
    if (++unpolled_ >= kGuardStride) return poll_guard();
    return true;
  }

  /// Publishes the charges accumulated since the last poll (call at
  /// seed boundaries, so the guard's work counter is exact between
  /// seeds).  Returns false if the guard has tripped.
  bool flush() {
    if (guard_ == nullptr) return true;
    if (guard_tripped_) return false;
    if (unpolled_ == 0) return true;
    return poll_guard();
  }

  std::uint64_t used() const { return used_; }

  /// First trip cause (kNone while charging succeeds).
  AbortReason reason() const { return reason_; }

  ExecGuard* guard() const { return guard_; }

 private:
  static constexpr std::uint64_t kGuardStride = 64;

  bool poll_guard() {
    const std::uint64_t batch = unpolled_;
    unpolled_ = 0;
    if (guard_->check(batch)) return true;
    guard_tripped_ = true;
    if (reason_ == AbortReason::kNone) reason_ = guard_->reason();
    return false;
  }

  std::uint64_t limit_;
  ExecGuard* guard_;
  std::uint64_t used_ = 0;
  std::uint64_t unpolled_ = 0;
  bool guard_tripped_ = false;
  AbortReason reason_ = AbortReason::kNone;
};

/// Shared work budget for concurrent workers: steps accumulate into one
/// atomic total (flushed in batches to keep the hot path cheap), and
/// the first flush that pushes the total past the limit raises a
/// cooperative cancellation flag every worker polls on each step.  The
/// completed/aborted verdict is deterministic — it depends only on
/// whether the full (thread-count-independent) step total exceeds the
/// limit — even though the partial counts at the abort point are not.
class SharedBudget {
 public:
  /// State shared by all workers of one classification run.
  struct Shared {
    explicit Shared(std::uint64_t limit, ExecGuard* guard = nullptr)
        : limit(limit), guard(guard) {}
    const std::uint64_t limit;
    ExecGuard* const guard;
    std::atomic<std::uint64_t> total{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint8_t> reason{
        static_cast<std::uint8_t>(AbortReason::kNone)};

    /// First-wins abort cause shared by every worker.
    void record(AbortReason cause) {
      std::uint8_t expected = static_cast<std::uint8_t>(AbortReason::kNone);
      reason.compare_exchange_strong(expected,
                                     static_cast<std::uint8_t>(cause),
                                     std::memory_order_relaxed);
      cancelled.store(true, std::memory_order_relaxed);
    }

    AbortReason abort_reason() const {
      return static_cast<AbortReason>(reason.load(std::memory_order_relaxed));
    }
  };

  explicit SharedBudget(Shared& shared) : shared_(&shared) {}

  bool charge() {
    if (++unflushed_ >= kFlushEvery) flush();
    return !shared_->cancelled.load(std::memory_order_relaxed);
  }

  /// Publishes locally counted steps; call at least once per seed.
  /// The ExecGuard is polled here, at flush granularity, so the hot
  /// path stays two increments and one relaxed load per step.
  void flush() {
    if (unflushed_ == 0) return;
    const std::uint64_t before =
        shared_->total.fetch_add(unflushed_, std::memory_order_relaxed);
    if (before + unflushed_ > shared_->limit)
      shared_->record(AbortReason::kWorkBudget);
    if (shared_->guard != nullptr && !shared_->guard->check(unflushed_))
      shared_->record(shared_->guard->reason());
    unflushed_ = 0;
  }

  ExecGuard* guard() const { return shared_->guard; }

 private:
  static constexpr std::uint64_t kFlushEvery = 512;
  Shared* shared_;
  std::uint64_t unflushed_ = 0;
};

/// Per-node outputs (a seed subtree or a stolen deeper subtree) that
/// must be merged in canonical discovery order.  Survivor keys live in
/// a pooled flat arena — recording a path never heap-allocates per
/// path; callers materialize ClassifyResult::kept_keys from it during
/// the (cold) merge.  Shared across SeedDfs instantiations so the
/// parallel engine's phase-1 (frontier) and phase-2 (plain) drivers
/// produce merge-compatible values.
struct SeedOutcome {
  std::uint64_t kept_paths = 0;
  std::uint64_t work = 0;
  PathKeyArena keys;
  bool exhausted = false;  // budget ran out inside this subtree
};

/// DFS driver for one worker (or the single serial thread).  Owns a
/// private ImplicationEngine — the thread-local implication invariant:
/// no implication state is ever shared between workers — over the
/// run-shared read-only CompiledCircuit, and is reused across the
/// seeds a worker processes.  The (pi, final value) assignment prefix
/// is kept on the engine between seeds of the same pair and its
/// recorded stats delta replayed on reuse, so the cumulative counters
/// equal a per-seed re-initialization bit for bit.
///
/// `kFrontier` selects the phase-1 frontier-cut mode at compile time
/// (set_frontier_cut + the per-extension split-depth test): the plain
/// instantiation — the serial engine and the phase-2 workers — carries
/// zero frontier overhead in its extension hot loop.
template <class Budget, bool kFrontier = false>
class SeedDfs {
 public:
  using SeedOutcome = ::rd::internal::SeedOutcome;

  /// `lead_counts`, when non-null, accumulates the per-lead
  /// controlling-value survivor tallies (order-independent sums, so a
  /// per-worker accumulator merges deterministically).  `closure`, when
  /// non-null, is attached to this driver's scalar engine (resolved by
  /// the run driver via resolve_closure and shared read-only).
  SeedDfs(const CompiledCircuit& compiled, const ClassifyOptions& options,
          Budget& budget, std::vector<std::uint64_t>* lead_counts,
          const StaticClosure* closure = nullptr)
      : compiled_(compiled),
        options_(options),
        budget_(budget),
        lead_counts_(lead_counts),
        closure_(closure),
        engine_(compiled, options.backward_implications) {
    engine_.attach_closure(closure);
    if (options.implications == ImplicationTier::kLearned &&
        closure == nullptr)
      throw std::invalid_argument("kLearned requires a resolved closure");
    if (options.criterion == Criterion::kInputSort &&
        !compiled.has_low_order_tables())
      throw std::invalid_argument(
          "kInputSort requires a circuit compiled with its InputSort");
    if constexpr (!kFrontier) {
      // Lane-parallel sibling-branch evaluation (DESIGN.md §11),
      // overlaying this driver's scalar engine.  The frontier
      // instantiation (phase 1 of the parallel engine) stays scalar:
      // it only walks the shallow prefix above the cut, and lanes
      // change nothing observable, so bit-identity across engines is
      // unaffected.
      lanes_ = static_cast<unsigned>(
          std::min<std::size_t>(std::max<std::size_t>(options.lanes, 1),
                                kMaxLanes));
      if (lanes_ > 1) {
        lane_engine_ = std::make_unique<LaneImplicationEngine>(
            compiled, options.backward_implications, &engine_, lanes_);
        chunk_pool_ =
            std::make_unique<std::deque<std::vector<LaneChild>>>();
      }
    }
  }

  /// Implication-engine event counters accumulated over every seed
  /// this driver has run (observability; merged by summation).
  const ImplicationStats& implication_stats() const {
    return engine_.stats();
  }

  /// This driver's closure counters (observability; drivers merge the
  /// shared closure's build_stats in separately, exactly once).
  ClosureStats closure_summary() const {
    ClosureStats stats;
    stats.hits = engine_.closure_hits();
    stats.misses = engine_.closure_misses();
    stats.learned_assignments = learned_assignments_;
    stats.learned_dropped = learned_dropped_;
    return stats;
  }

  /// Runs one seed subtree.  `max_keys` caps this seed's key
  /// collection (the caller threads the global collect_paths_limit
  /// through it).
  SeedOutcome run_seed(const ClassifySeed& seed, std::uint64_t max_keys) {
    begin_node(max_keys, seed.final_value);
    ensure_prefix(seed.pi, seed.final_value);
    if (prefix_ok_) {
      const std::size_t mark = engine_.mark();
      if (!extend_through(seed.first_lead, seed.final_value))
        outcome_.exhausted = true;
      engine_.rollback(mark);
    }
    return std::move(outcome_);
  }

  /// Phase-1 frontier mode (the parallel classifier's shallow pass):
  /// the DFS is cut at `split_depth` leads — a live (non-PO-tipped)
  /// node at that depth is handed to `on_frontier` as a subtree root
  /// instead of being descended into — and `on_survivor` fires for
  /// every path recorded above the cut, so the caller can log the
  /// interleaved discovery order its merge must reproduce.  Charging
  /// is untouched: the cut edge itself is charged exactly as the
  /// serial DFS charges it; everything below the cut is charged by
  /// whichever worker adopts the subtree (run_subtree).
  void set_frontier_cut(
      std::size_t split_depth,
      std::function<void(const std::vector<LeadId>&)> on_frontier,
      std::function<void()> on_survivor) {
    static_assert(kFrontier,
                  "set_frontier_cut requires a SeedDfs<Budget, true>");
    split_depth_ = split_depth;
    on_frontier_ = std::move(on_frontier);
    on_survivor_ = std::move(on_survivor);
  }

  /// Adopts the subtree rooted at the frontier node `prefix[0..depth)`
  /// of `seed` and runs it to completion — the thief's half of the
  /// checkpoint/rollback discipline.  Re-establishing the prefix is
  /// *charge-free*: the engine physically replays only the suffix that
  /// diverges from the trail it already holds (rollback to the common
  /// ancestor + assert the divergent leads), then restore_stats
  /// disowns those charges, because phase 1 already charged every
  /// prefix edge and the per-seed pair delta exactly as the serial
  /// engine does.  The subtree's own edges (depth > split) are then
  /// charged normally, so merged counters are bit-identical to serial.
  SeedOutcome run_subtree(const ClassifySeed& seed, const LeadId* prefix,
                          std::size_t depth, std::uint64_t max_keys) {
    begin_node(max_keys, seed.final_value);
    const GateId tip = establish_subtree_prefix(seed, prefix, depth);
    if (!extend(tip, to_bool(engine_.value(tip))))
      outcome_.exhausted = true;
    segment_.clear();
    return std::move(outcome_);
  }

  /// One frontier subtree handed to run_packed: its lead prefix in the
  /// caller's flat pool.
  struct PackedItem {
    const LeadId* prefix = nullptr;
    std::uint32_t depth = 0;
  };

  /// Lane-packed frontier scheduling (DESIGN.md §15): runs `count`
  /// frontier subtrees — all of one (pi, final value) pair, in
  /// canonical item order — producing outcomes bit-identical to
  /// `count` separate run_subtree calls, but evaluating every item's
  /// first-level side-input programs in ONE lane batch first.  Each
  /// item's first-level children occupy a contiguous lane block; the
  /// item's own prefix constraints are installed into that block as
  /// masked lane assignments over the shared pair-root base, so lane
  /// occupancy is set by the frontier width instead of one node's
  /// fan-out.  The install charges are watermarked away (phase 1
  /// already charged every prefix edge), so a conflicted child's
  /// replayed delta is exactly its own program's scalar charge — the
  /// work/budget charge stream, every ImplicationStats counter, and
  /// the survivor order stay bit-identical to the serial engine.
  /// Falls back to plain run_subtree per item when lanes are off, the
  /// pack degenerates, or (defensively) a prefix install conflicts.
  void run_packed(const ClassifySeed& seed, const PackedItem* items,
                  std::size_t count, std::uint64_t max_keys,
                  SeedOutcome* out) {
    static_assert(!kFrontier, "run_packed is a phase-2 (plain) facility");
    const bool packed =
        lane_engine_ != nullptr && count >= 2 &&
        evaluate_pack(seed, items, count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!packed || pack_valid_[i] == 0) {
        out[i] = run_subtree(seed, items[i].prefix, items[i].depth, max_keys);
        continue;
      }
      begin_node(max_keys, seed.final_value);
      const GateId tip =
          establish_subtree_prefix(seed, items[i].prefix, items[i].depth);
      const bool tip_value = to_bool(engine_.value(tip));
      // Canonical first-level consumption from the pack verdicts: one
      // work unit and one budget charge per child in order (the exact
      // serial step stream), replaying lane-proven conflicts and
      // descending into survivors on the scalar engine — below this
      // level the normal scalar + sibling-lane recursion runs.
      bool ok = true;
      for (std::size_t c = pack_child_begin_[i];
           c < pack_child_begin_[i + 1]; ++c) {
        const LaneChild& child = pack_children_[c];
        ++outcome_.work;
        if (!budget_.charge()) {
          ok = false;
          break;
        }
        if (child.conflicted) {
          engine_.replay_stats(child.delta);
          continue;
        }
        if (!descend_through(child.lead, tip_value)) {
          ok = false;
          break;
        }
      }
      if (!ok) outcome_.exhausted = true;
      segment_.clear();
      out[i] = std::move(outcome_);
    }
  }

  /// Returns a consumed outcome's arena to the pool so the next node's
  /// collection reuses its capacity.
  void recycle(PathKeyArena&& arena) {
    arena_pool_ = std::move(arena);
  }

 private:
  void begin_node(std::uint64_t max_keys, bool final_value) {
    // Field-wise reset: `outcome_ = SeedOutcome{}` would default-build
    // (and immediately discard) a PathKeyArena, whose constructor
    // allocates — one malloc+free per seed, measurable on circuits
    // whose whole classification takes microseconds.
    outcome_.kept_paths = 0;
    outcome_.work = 0;
    outcome_.exhausted = false;
    outcome_.keys = std::move(arena_pool_);
    outcome_.keys.clear();
    max_keys_ = max_keys;
    current_final_pi_value_ = final_value;
  }

  /// Re-asserts one already-charged prefix lead during subtree
  /// adoption.  The on-path value is read back from the engine (the
  /// prefix is conflict-free, so the driver's value is always held),
  /// and the caller disowns the assertion's charges via restore_stats.
  void replay_lead(LeadId lead_id) {
    const CompiledLead& lead = compiled_.lead(lead_id);
    assert_lead_constraints(lead, to_bool(engine_.value(lead.driver)));
  }

  /// Charge-free prefix adoption shared by run_subtree and the packed
  /// consumption loop: leaves the scalar engine holding exactly the
  /// serial engine's state at the tree node `prefix[0..depth)` of
  /// `seed` (checkpoint → rollback to the common trail prefix → replay
  /// the divergent suffix → restore_stats), loads segment_ with the
  /// full prefix, and returns the subtree's tip gate.
  GateId establish_subtree_prefix(const ClassifySeed& seed,
                                  const LeadId* prefix, std::size_t depth) {
    const ImplicationEngine::Checkpoint replay = engine_.checkpoint();
    // The trail must be valid too: ensure_prefix (the run_seed path)
    // caches the pair root without recording a trail, so a matching
    // prefix alone does not license mark_at/common_prefix below.
    if (!prefix_valid_ || !trail_.valid() || prefix_pi_ != seed.pi ||
        prefix_value_ != seed.final_value) {
      engine_.reset();
      trail_.invalidate();
      // Frontier nodes only exist under conflict-free pair prefixes,
      // so the root assignment cannot fail here.
      prefix_ok_ = engine_.assign(seed.pi, to_value3(seed.final_value));
      prefix_pi_ = seed.pi;
      prefix_value_ = seed.final_value;
      prefix_valid_ = true;
      trail_.reset_root(engine_.mark());
    }
    const std::size_t keep = trail_.common_prefix(prefix, depth);
    engine_.rollback(trail_.mark_at(keep));
    trail_.pop_to(keep);
    for (std::size_t d = keep; d < depth; ++d) {
      replay_lead(prefix[d]);
      trail_.push(prefix[d], engine_.mark());
    }
    engine_.restore_stats(replay.stats);

    // The engine now holds exactly the serial engine's state at this
    // tree node.  segment_ carries the full prefix so recorded keys
    // and lead tallies cover the whole path.
    segment_.assign(prefix, prefix + depth);
    return compiled_.lead(prefix[depth - 1]).sink;
  }
  /// Leaves the engine holding exactly the (pi, value) assignment (and
  /// its implications).  On a cache hit the assignment is not re-run;
  /// the recorded stats delta is replayed instead, so the cumulative
  /// engine counters match a from-scratch re-assignment exactly.
  void ensure_prefix(GateId pi, bool final_value) {
    if (prefix_valid_ && prefix_pi_ == pi && prefix_value_ == final_value) {
      engine_.replay_stats(prefix_delta_);
      return;
    }
    engine_.reset();
    const ImplicationStats before = engine_.stats();
    prefix_ok_ = engine_.assign(pi, to_value3(final_value));
    prefix_delta_ = engine_.stats().delta_since(before);
    prefix_pi_ = pi;
    prefix_value_ = final_value;
    prefix_valid_ = true;
  }

  /// The side-input constraint row `lead` imposes for on-path driver
  /// value `tip_value` under the active criterion (empty when it
  /// imposes none): tip_value == nc selects (FU2)/(NR2)/(π2), every
  /// side input stable non-controlling; a controlling on-path value
  /// selects nothing under (FU2), the full row under (NR2), and the
  /// low-order row under (π3).  Single source of truth for the scalar
  /// assert below and the lane-parallel branch programs.
  SideSpan lead_constraints(const CompiledLead& lead, bool tip_value) const {
    if (!lead.sink_has_ctrl) return SideSpan{};
    if (tip_value == lead.sink_nc) return compiled_.side_all_span(lead);
    switch (options_.criterion) {
      case Criterion::kFunctionalSensitizable:
        return SideSpan{};
      case Criterion::kNonRobust:
        return compiled_.side_all_span(lead);
      case Criterion::kInputSort:
        return compiled_.side_low_span(lead);
    }
    return SideSpan{};
  }

  /// Asserts `lead`'s side-input constraints for on-path driver value
  /// `tip_value` under the active criterion.  Returns false on a local
  /// implication conflict.  After a true return the sink's stable
  /// value is implied: a controlling on-path input forces the
  /// controlled output; a non-controlling one had all side inputs
  /// pinned non-controlling.  Single-input gates imply directly.
  bool assert_lead_constraints(const CompiledLead& lead, bool tip_value) {
    const SideSpan span = lead_constraints(lead, tip_value);
    const Value3 value = to_value3(span.nc);
    for (const GateId* gate = span.begin(); gate != span.end(); ++gate)
      if (!engine_.assign(*gate, value)) return false;
    return true;
  }

  /// Extends the current segment through `lead_id`, whose driver has
  /// stable value `tip_value`.  Returns false when the budget is
  /// exhausted (serial) or the run is cancelled (parallel).
  bool extend_through(LeadId lead_id, bool tip_value) {
    ++outcome_.work;
    if (!budget_.charge()) return false;
    return descend_through(lead_id, tip_value);
  }

  /// The body of extend_through after the work charge: assert, cut or
  /// descend, roll back.  Split out so the lane-parallel loop can
  /// charge each child itself (keeping the budget/guard step stream
  /// canonical) and skip this body entirely for lane-proven conflicts.
  bool descend_through(LeadId lead_id, bool tip_value) {
    const CompiledLead& lead = compiled_.lead(lead_id);
    const std::size_t mark = engine_.mark();
    bool ok = true;
    if (assert_lead_constraints(lead, tip_value)) {
      const Value3 sink_value = engine_.value(lead.sink);
      segment_.push_back(lead_id);
      bool descend = true;
      if constexpr (kFrontier) {
        if (segment_.size() >= split_depth_ &&
            compiled_.semantics(lead.sink).type != GateType::kOutput) {
          // Frontier cut: this live node becomes a phase-2 subtree
          // root.  Its edge was charged above, exactly as serial
          // charges it.
          on_frontier_(segment_);
          descend = false;
        }
      }
      if (descend) ok = extend(lead.sink, to_bool(sink_value));
      segment_.pop_back();
    }
    engine_.rollback(mark);
    return ok;
  }

  /// Extends the current segment from tip gate `tip` with stable value
  /// `tip_value` through each of its fanout leads.
  bool extend(GateId tip, bool tip_value) {
    if (compiled_.semantics(tip).type == GateType::kOutput) {
      record_survivor();
      return true;
    }
    const LeadId* lead = compiled_.fanout_lead_begin(tip);
    const std::uint32_t count = compiled_.fanout_count(tip);
    if constexpr (!kFrontier) {
      if (lane_engine_ != nullptr && count >= 2)
        return extend_bitpar(lead, count, tip_value);
    }
    const LeadId* const end = lead + count;
    for (; lead != end; ++lead)
      if (!extend_through(*lead, tip_value)) return false;
    return true;
  }

  /// One child of the current tree node in the lane-parallel loop.
  struct LaneChild {
    LeadId lead = kNullLead;
    SideSpan span;            // its side-input program (may be empty)
    int lane = -1;            // -1: empty program, nothing to evaluate
    bool conflicted = false;  // lane-proven conflict (skip the child)
    ImplicationStats delta;   // its exact scalar charges when conflicted
  };

  /// Lane-parallel sibling evaluation (DESIGN.md §11).  Children are
  /// walked in canonical order in chunks of up to lanes_ nonempty
  /// constraint programs.  Each chunk is evaluated in one lockstep
  /// drain over the lane engine (the scalar engine's node state is the
  /// base overlay), then the canonical per-child loop replays exactly
  /// the scalar DFS: one work unit and one budget charge per child in
  /// order — so the budget/guard step stream, and with it every abort
  /// verdict, is bit-identical — descending into survivors on the
  /// scalar engine and crediting each conflicted child's exact stats
  /// delta via replay_stats instead of re-running it.
  bool extend_bitpar(const LeadId* leads, std::uint32_t count,
                     bool tip_value) {
    // Descending into a survivor re-enters extend_bitpar for the child
    // node, so the chunk scratch must be per-recursion-level: one
    // pooled vector per DFS depth, reused across the (many) nodes at
    // that depth.  The lane engine itself IS safely shared down the
    // recursion — every verdict and stats delta is copied into the
    // chunk before the first descend, so a deeper node's begin_batch
    // clobbering the lane state is invisible up here.
    if (bitpar_depth_ == chunk_pool_->size()) chunk_pool_->emplace_back();
    std::vector<LaneChild>& chunk = (*chunk_pool_)[bitpar_depth_];
    ++bitpar_depth_;
    const bool ok = extend_bitpar_at(chunk, leads, count, tip_value);
    --bitpar_depth_;
    return ok;
  }

  bool extend_bitpar_at(std::vector<LaneChild>& chunk, const LeadId* leads,
                        std::uint32_t count, bool tip_value) {
    std::uint32_t next = 0;
    while (next < count) {
      chunk.clear();
      unsigned used = 0;
      while (next < count) {
        const LeadId id = leads[next];
        const SideSpan span = lead_constraints(compiled_.lead(id), tip_value);
        if (!span.empty() && used == lanes_) break;
        chunk.push_back(LaneChild{id, span,
                                   span.empty() ? -1 : static_cast<int>(used),
                                   false, ImplicationStats{}});
        if (!span.empty()) ++used;
        ++next;
      }
      // A chunk with fewer than two live programs gains nothing from
      // the lane drain; the scalar descend settles those children.
      if (used >= 2) evaluate_chunk(chunk);
      for (const LaneChild& child : chunk) {
        ++outcome_.work;
        if (!budget_.charge()) return false;
        if (child.conflicted) {
          engine_.replay_stats(child.delta);
          continue;
        }
        if (!descend_through(child.lead, tip_value)) return false;
      }
    }
    return true;
  }

  /// Runs the current chunk's programs in lockstep on the lane engine
  /// and stamps each laned child's verdict (+ exact stats delta for
  /// conflicts).  Round r asserts the r-th side-input gate of every
  /// still-live program, merging consecutive lanes asserting the same
  /// (gate, value) into one masked call; per-lane call order is
  /// program order, so each lane's event stream is its scalar stream.
  void evaluate_chunk(std::vector<LaneChild>& chunk) {
    LaneMask batch = 0;
    for (const LaneChild& child : chunk)
      if (child.lane >= 0) batch |= lane_bit(child.lane);
    lane_engine_->begin_batch(batch);
    const LaneMask alive = run_round_robin(chunk, batch);
    for (LaneChild& child : chunk) {
      if (child.lane < 0 || (alive & lane_bit(child.lane))) continue;
      child.conflicted = true;
      child.delta = lane_engine_->lane_stats(child.lane);
    }
  }

  /// Round-robin core shared by the sibling-chunk and frontier-pack
  /// paths: round r asserts the r-th side-input gate of every
  /// still-live program, merging consecutive lanes asserting the same
  /// (gate, value) into one masked call; per-lane call order is
  /// program order, so each lane's event stream is its scalar stream.
  /// Returns the lanes of `alive` that never conflicted.
  LaneMask run_round_robin(const std::vector<LaneChild>& chunk,
                           LaneMask alive) {
    for (std::uint32_t r = 0; alive != 0; ++r) {
      bool any = false;
      GateId run_gate = kNullGate;
      bool run_nc = false;
      LaneMask run_mask = 0;
      for (const LaneChild& child : chunk) {
        if (child.lane < 0 || r >= child.span.count) continue;
        const LaneMask bit = lane_bit(child.lane);
        if (!(alive & bit)) continue;
        any = true;
        const GateId gate = child.span.gates[r];
        if (run_mask != 0 &&
            (gate != run_gate || child.span.nc != run_nc)) {
          alive = (alive & ~run_mask) |
                  lane_engine_->assign(run_gate, to_value3(run_nc), run_mask);
          run_mask = 0;
        }
        run_gate = gate;
        run_nc = child.span.nc;
        run_mask |= bit;
      }
      if (run_mask != 0)
        alive = (alive & ~run_mask) |
                lane_engine_->assign(run_gate, to_value3(run_nc), run_mask);
      if (!any) break;
    }
    return alive;
  }

  /// The lane half of run_packed.  Leaves the scalar engine holding
  /// exactly the pair-root assignment (charge-free), installs each
  /// item's prefix into its contiguous lane block over that base,
  /// watermarks the per-lane counters past the installs, and drains
  /// every item's first-level side-input programs in one shared
  /// round-robin batch.  Verdicts and per-conflict deltas land in
  /// pack_children_ / pack_child_begin_; pack_valid_[i] clears when
  /// item i could not be lane-evaluated (the consumer then runs the
  /// plain run_subtree path, which is observably identical).  Returns
  /// false when nothing could be packed (total fan-out exceeds the
  /// lane count — the caller's packer prevents this by construction).
  bool evaluate_pack(const ClassifySeed& seed, const PackedItem* items,
                     std::size_t count) {
    // Lane demand: item i's children occupy the block of
    // fanout_count(tip) lanes starting at its running total.  The
    // whole pack must fit — callers pack by the same measure.
    std::uint64_t demand = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const PackedItem& item = items[i];
      const GateId tip = compiled_.lead(item.prefix[item.depth - 1]).sink;
      demand += compiled_.fanout_count(tip);
    }
    if (demand > lanes_ || demand == 0) return false;

    // The lane evaluation needs the scalar base to hold exactly the
    // pair-root assignment: unwind any prefix leads the trail still
    // carries (or establish the pair from scratch), charge-free — the
    // consumption loop re-adopts and re-accounts each item's prefix
    // exactly as run_subtree does.
    const ImplicationEngine::Checkpoint replay = engine_.checkpoint();
    // As in establish_subtree_prefix: a pair root cached without a
    // trail (ensure_prefix) cannot be unwound via mark_at(0).
    if (!prefix_valid_ || !trail_.valid() || prefix_pi_ != seed.pi ||
        prefix_value_ != seed.final_value) {
      engine_.reset();
      trail_.invalidate();
      prefix_ok_ = engine_.assign(seed.pi, to_value3(seed.final_value));
      prefix_pi_ = seed.pi;
      prefix_value_ = seed.final_value;
      prefix_valid_ = true;
      trail_.reset_root(engine_.mark());
    } else {
      engine_.rollback(trail_.mark_at(0));
      trail_.pop_to(0);
    }
    engine_.restore_stats(replay.stats);

    pack_valid_.assign(count, 1);
    pack_children_.clear();
    pack_child_begin_.assign(count + 1, 0);

    LaneMask batch = 0;
    unsigned base_lane = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const PackedItem& item = items[i];
      const GateId tip = compiled_.lead(item.prefix[item.depth - 1]).sink;
      const unsigned width = compiled_.fanout_count(tip);
      batch |= lane_mask_below(base_lane + width) & ~lane_mask_below(base_lane);
      base_lane += width;
    }
    lane_engine_->begin_batch(batch);

    base_lane = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const PackedItem& item = items[i];
      const GateId tip = compiled_.lead(item.prefix[item.depth - 1]).sink;
      const unsigned width = compiled_.fanout_count(tip);
      const LaneMask block =
          lane_mask_below(base_lane + width) & ~lane_mask_below(base_lane);

      // Install the item's prefix into its block: per lead, the same
      // constraint row the scalar replay asserts, as one masked call
      // over the whole block.  Driver values are read back through the
      // block's first lane — lane planes over the pair-root base are
      // exactly the scalar state the serial DFS would see here.
      bool live = width > 0;
      bool driver_value = seed.final_value;
      for (std::uint32_t d = 0; live && d < item.depth; ++d) {
        const CompiledLead& lead = compiled_.lead(item.prefix[d]);
        const SideSpan span = lead_constraints(lead, driver_value);
        const Value3 nc = to_value3(span.nc);
        for (const GateId* gate = span.begin(); gate != span.end(); ++gate) {
          if (lane_engine_->assign(*gate, nc, block) != block) {
            // Cannot happen — frontier nodes are live, so their prefix
            // constraints are conflict-free — but a lost lane must
            // never feed verdicts: fall back to the scalar path.
            live = false;
            break;
          }
        }
        if (live)
          driver_value = to_bool(lane_engine_->value(lead.sink, base_lane));
      }

      // First-level children: nonempty side-input programs take the
      // block's lanes in canonical child order (width bounds their
      // count, so the block always suffices).
      const LeadId* lead = compiled_.fanout_lead_begin(tip);
      unsigned used = 0;
      for (std::uint32_t c = 0; c < width; ++c) {
        const SideSpan span =
            lead_constraints(compiled_.lead(lead[c]), driver_value);
        const bool laned = live && !span.empty();
        pack_children_.push_back(
            LaneChild{lead[c], span,
                      laned ? static_cast<int>(base_lane + used) : -1, false,
                      ImplicationStats{}});
        if (laned) ++used;
      }
      if (!live) pack_valid_[i] = 0;
      pack_child_begin_[i + 1] = pack_children_.size();
      base_lane += width;
    }

    // Watermark each child lane past its item's install charges (the
    // prefix was charged by phase 1; only the child's own program may
    // bill), then drain all programs in one shared round robin.
    LaneMask alive = 0;
    pack_watermarks_.assign(pack_children_.size(), ImplicationStats{});
    for (std::size_t c = 0; c < pack_children_.size(); ++c) {
      const LaneChild& child = pack_children_[c];
      if (child.lane < 0) continue;
      pack_watermarks_[c] = lane_engine_->lane_stats(child.lane);
      alive |= lane_bit(child.lane);
    }
    alive = run_round_robin(pack_children_, alive);
    for (std::size_t c = 0; c < pack_children_.size(); ++c) {
      LaneChild& child = pack_children_[c];
      if (child.lane < 0 || (alive & lane_bit(child.lane))) continue;
      child.conflicted = true;
      child.delta =
          lane_engine_->lane_stats(child.lane).delta_since(pack_watermarks_[c]);
    }
    return true;
  }

  /// kLearned: one failed-literal probe of side-input gate `gate`
  /// (currently unknown).  Returns false when both polarities are
  /// refuted — the engine state at this survivor is unsatisfiable.  A
  /// single refuted polarity asserts the forced one on the engine
  /// (strengthening later probes of the same survivor); the caller
  /// rolls everything back to its mark.
  bool probe_literal(GateId gate) {
    if (options_.learn_depth <= 1) {
      // Static tier: a closure row recording a conflict from the
      // *empty* state is unsatisfiable in every state.
      const bool ok0 = closure_->row(gate, Value3::kZero).ok;
      const bool ok1 = closure_->row(gate, Value3::kOne).ok;
      if (ok0 && ok1) return true;
      if (!ok0 && !ok1) return false;
      ++learned_assignments_;
      return engine_.assign(gate, ok0 ? Value3::kZero : Value3::kOne);
    }
    const std::size_t mark = engine_.mark();
    const bool ok0 = engine_.assign(gate, Value3::kZero);
    engine_.rollback(mark);
    const bool ok1 = engine_.assign(gate, Value3::kOne);
    if (!ok1) {
      engine_.rollback(mark);
      if (!ok0) return false;
      ++learned_assignments_;
      engine_.assign(gate, Value3::kZero);
      return true;
    }
    if (!ok0) {
      ++learned_assignments_;  // gate = 1 already holds on the engine
      return true;
    }
    engine_.rollback(mark);
    return true;
  }

  /// kLearned: probes the unknown side inputs along the recorded
  /// segment.  Returns false when probing proves the survivor's
  /// constraint set unsatisfiable — the path is truly robust dependent
  /// (both polarities of some literal refuted by sound implications)
  /// and is dropped.  Deterministic: the engine state at a survivor is
  /// thread-count-independent, and all probe state is rolled back
  /// before returning.
  bool probe_survivor() {
    const std::size_t mark = engine_.mark();
    std::uint64_t probed = 0;
    bool feasible = true;
    for (const LeadId lead_id : segment_) {
      const CompiledLead& lead = compiled_.lead(lead_id);
      if (!lead.sink_has_ctrl) continue;
      const SideSpan span = compiled_.side_all_span(lead);
      for (const GateId* gate = span.begin(); gate != span.end(); ++gate) {
        if (is_known(engine_.value(*gate))) continue;
        if (options_.learn_budget != 0 &&
            probed >= options_.learn_budget) {
          engine_.rollback(mark);
          return true;
        }
        ++probed;
        if (!probe_literal(*gate)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) break;
    }
    engine_.rollback(mark);
    return feasible;
  }

  void record_survivor() {
    if (options_.implications == ImplicationTier::kLearned &&
        !probe_survivor()) {
      // Refuted before it is counted: no kept_paths increment, no
      // merge event, no key, no lead tallies — the path joins the
      // identified RD set.
      ++learned_dropped_;
      return;
    }
    ++outcome_.kept_paths;
    if constexpr (kFrontier) {
      if (on_survivor_) on_survivor_();
    }
    if (outcome_.keys.size() < max_keys_) {
      // The collected keys are the one allocation that grows without
      // bound with the survivor count; charge the guard with the
      // arena's capacity *growth* so the accounting stays exact while
      // appends into pooled capacity cost nothing.
      ExecGuard* const guard = budget_.guard();
      const std::uint64_t before =
          guard != nullptr ? outcome_.keys.capacity_bytes() : 0;
      outcome_.keys.append(segment_, current_final_pi_value_);
      if (guard != nullptr) {
        const std::uint64_t after = outcome_.keys.capacity_bytes();
        if (after > before) guard->add_memory(after - before);
      }
    }
    if (lead_counts_ == nullptr) return;
    for (LeadId lead_id : segment_) {
      const CompiledLead& lead = compiled_.lead(lead_id);
      if (!lead.sink_has_ctrl) continue;
      const Value3 value = engine_.value(lead.driver);
      if (is_known(value) && to_bool(value) == !lead.sink_nc)
        ++(*lead_counts_)[lead_id];
    }
  }

  const CompiledCircuit& compiled_;
  const ClassifyOptions& options_;
  Budget& budget_;
  std::vector<std::uint64_t>* lead_counts_;
  const StaticClosure* closure_;
  ImplicationEngine engine_;
  std::uint64_t learned_assignments_ = 0;
  std::uint64_t learned_dropped_ = 0;

  // Lane-parallel sibling evaluation (null/scalar unless
  // options.lanes > 1 in a non-frontier instantiation).  The lane
  // engine overlays engine_, whose state is frozen for the duration of
  // each chunk evaluation; chunk_ is per-node scratch.
  std::unique_ptr<LaneImplicationEngine> lane_engine_;
  unsigned lanes_ = 1;
  // One chunk scratch per DFS depth.  A deque, not a vector of
  // vectors: extend_bitpar holds a reference to its depth's chunk
  // across descend_through, and a deeper recursion may grow the pool —
  // deque growth never moves existing elements, vector growth would.
  // Heap-held and built with the lane engine: a default-constructed
  // deque allocates its node map eagerly, which the scalar
  // (lanes == 1) driver would pay per classify run for nothing.
  std::unique_ptr<std::deque<std::vector<LaneChild>>> chunk_pool_;
  std::size_t bitpar_depth_ = 0;

  // run_packed scratch: the pack's first-level child verdicts (one
  // contiguous vector with per-item offsets), per-lane install
  // watermarks, and per-item validity.  Materialized before any
  // consumption descends — the recursion below re-enters the lane
  // engine and clobbers its batch state.
  std::vector<LaneChild> pack_children_;
  std::vector<std::size_t> pack_child_begin_;
  std::vector<ImplicationStats> pack_watermarks_;
  std::vector<std::uint8_t> pack_valid_;

  std::vector<LeadId> segment_;
  SeedOutcome outcome_;
  PathKeyArena arena_pool_;
  std::uint64_t max_keys_ = 0;
  bool current_final_pi_value_ = false;

  // Frontier-cut hooks, only exercised by SeedDfs<Budget, true>
  // (phase 1 of the parallel engine); if constexpr keeps them out of
  // the plain instantiation's hot loop entirely.
  std::size_t split_depth_ = std::numeric_limits<std::size_t>::max();
  std::function<void(const std::vector<LeadId>&)> on_frontier_;
  std::function<void()> on_survivor_;

  // Subtree-adoption cursor: the lead prefix currently asserted on the
  // engine with the watermark after each lead (run_subtree only).
  PrefixTrail trail_;

  // Shared-prefix cache: the (pi, final value) assignment currently
  // held on the engine, its conflict-free flag, and the stats delta it
  // cost when first established.
  bool prefix_valid_ = false;
  bool prefix_ok_ = false;
  GateId prefix_pi_ = kNullGate;
  bool prefix_value_ = false;
  ImplicationStats prefix_delta_;
};

/// Shared post-pass: structural totals and RD percentages.
inline void finish_classify_result(const Circuit& circuit,
                                   ClassifyResult* result) {
  const PathCounts counts(circuit);
  result->total_logical = counts.total_logical();
  if (result->completed) {
    result->rd_paths = result->total_logical - BigUint(result->kept_paths);
    // Guard the percentage against total_logical == 0 (no paths) and
    // against BigUint::to_double overflowing to infinity, where the
    // naive 100*inf/inf would poison rd_percent with NaN.
    const double total = result->total_logical.to_double();
    const double rd = result->rd_paths.to_double();
    double percent = 0.0;
    if (total > 0) {
      percent = std::isfinite(total) && std::isfinite(rd)
                    ? 100.0 * rd / total
                    : 100.0;  // totals beyond double range: rd dominates
    }
    result->rd_percent = std::isfinite(percent) ? percent : 0.0;
  }
}

}  // namespace rd::internal
