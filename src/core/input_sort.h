// Input sorts (Definition 7): a total order of every gate's input pins.
//
// An input sort π fixes a complete stabilizing assignment σ^π by making
// Step 2(b) of Algorithm 1 deterministic: among the controlling inputs,
// always pick the lead with the smallest π-rank.  The quality of the
// RD-set identified by the fast classifier depends entirely on the
// choice of π — Section V's heuristics construct good sorts.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "util/biguint.h"
#include "util/rng.h"

namespace rd {

/// π as per-pin ranks: rank(g, pin) ∈ [0, fanin(g)); lower rank = chosen
/// earlier in Step 2(b) of Algorithm 1.
class InputSort {
 public:
  /// Identity sort: pins keep their netlist order.
  static InputSort natural(const Circuit& circuit);

  /// Generic constructor from a per-lead cost: within each gate, pins
  /// are ranked by ascending cost of their lead; ties are broken
  /// randomly when an Rng is supplied (as the paper specifies for both
  /// heuristics), by pin index otherwise.
  static InputSort from_lead_costs(const Circuit& circuit,
                                   const std::vector<BigUint>& lead_cost,
                                   Rng* tie_breaker = nullptr);

  /// The sort with every gate's order reversed (the paper's "inverse"
  /// column Heu2-bar in Table I).
  InputSort reversed() const;

  /// The sort with the ranks of two pins of one gate exchanged — the
  /// local move of the refinement extension (refine_sort).
  InputSort with_swapped_pins(GateId id, std::uint32_t pin_a,
                              std::uint32_t pin_b) const;

  /// Rank of input pin `pin` of gate `id` (0 = highest priority).
  std::uint32_t rank(GateId id, std::uint32_t pin) const {
    return ranks_[id][pin];
  }

  /// True if pin `a` of gate `id` is ordered before pin `b`.
  bool before(GateId id, std::uint32_t a, std::uint32_t b) const {
    return ranks_[id][a] < ranks_[id][b];
  }

 private:
  // ranks_[gate][pin] = position of that pin in the gate's order.
  std::vector<std::vector<std::uint32_t>> ranks_;
};

}  // namespace rd
