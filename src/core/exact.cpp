#include "core/exact.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "sim/logic_sim.h"

namespace rd {

namespace {

/// Checks the criterion's conditions for `path` under concrete stable
/// values (one simulation result).
bool conditions_hold(const Circuit& circuit, const LogicalPath& path,
                     Criterion criterion, const InputSort* sort,
                     const std::vector<bool>& values) {
  const GateId pi = path_pi(circuit, path.path);
  if (values[pi] != path.final_pi_value) return false;  // (FU1)/(NR1)/(π1)
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    if (!has_controlling_value(sink.type)) continue;
    const bool nc = noncontrolling_value(sink.type);
    const bool on_path_value = values[lead.driver];
    for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
      if (pin == lead.pin) continue;
      const bool side_value = values[sink.fanins[pin]];
      if (on_path_value == nc) {
        // (FU2)/(NR2)/(π2): all side inputs non-controlling.
        if (side_value != nc) return false;
      } else {
        switch (criterion) {
          case Criterion::kFunctionalSensitizable:
            break;
          case Criterion::kNonRobust:
            if (side_value != nc) return false;
            break;
          case Criterion::kInputSort:
            if (sort->before(lead.sink, pin, lead.pin) && side_value != nc)
              return false;
            break;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool exactly_sensitizable(const Circuit& circuit, const LogicalPath& path,
                          Criterion criterion, const InputSort* sort) {
  const std::size_t n = circuit.inputs().size();
  if (n > 24)
    throw std::invalid_argument("exactly_sensitizable: too many inputs");
  if (criterion == Criterion::kInputSort && sort == nullptr)
    throw std::invalid_argument("kInputSort requires an InputSort");
  std::vector<bool> input_values(n);
  for (std::uint64_t minterm = 0; minterm < (std::uint64_t{1} << n);
       ++minterm) {
    for (std::size_t i = 0; i < n; ++i) input_values[i] = (minterm >> i) & 1;
    const auto values = simulate(circuit, input_values);
    if (conditions_hold(circuit, path, criterion, sort, values)) return true;
  }
  return false;
}

LogicalPathSet exact_kept_paths(const Circuit& circuit, Criterion criterion,
                                const InputSort* sort,
                                std::uint64_t max_paths) {
  LogicalPathSet kept;
  const bool ok = enumerate_paths(
      circuit,
      [&](const PhysicalPath& physical) {
        for (const bool final_value : {false, true}) {
          const LogicalPath logical{physical, final_value};
          if (exactly_sensitizable(circuit, logical, criterion, sort))
            kept.insert(logical.key());
        }
      },
      max_paths);
  if (!ok) throw std::runtime_error("exact_kept_paths: too many paths");
  return kept;
}

ExactClassifyOutcome exact_kept_paths_guarded(const Circuit& circuit,
                                              Criterion criterion,
                                              const InputSort* sort,
                                              std::uint64_t max_paths,
                                              ExecGuard* guard) {
  ExactClassifyOutcome outcome;
  const std::size_t n = circuit.inputs().size();
  if (n > 24 || (criterion == Criterion::kInputSort && sort == nullptr)) {
    outcome.abort_reason = AbortReason::kWorkBudget;
    return outcome;
  }
  bool guard_stop = false;
  const bool ok = enumerate_paths(
      circuit,
      [&](const PhysicalPath& physical) {
        if (guard_stop) return;
        // Charge the actual sweep cost: two logical paths, 2^n vectors.
        if (guard != nullptr && !guard->check(std::uint64_t{2} << n)) {
          guard_stop = true;
          return;
        }
        for (const bool final_value : {false, true}) {
          const LogicalPath logical{physical, final_value};
          if (exactly_sensitizable(circuit, logical, criterion, sort))
            outcome.kept.insert(logical.key());
        }
      },
      max_paths);
  if (guard_stop) {
    outcome.abort_reason = guard->reason();
    return outcome;
  }
  if (!ok) {
    outcome.abort_reason = AbortReason::kWorkBudget;
    return outcome;
  }
  outcome.completed = true;
  return outcome;
}

std::optional<std::size_t> exact_min_lp_sigma(const Circuit& circuit,
                                              std::uint64_t max_states) {
  const std::size_t n = circuit.inputs().size();
  if (n > 16)
    throw std::invalid_argument("exact_min_lp_sigma: too many inputs");

  // Pre-compute, for every (vector, PO), the logical-path key sets of
  // every possible stabilizing system.
  struct ChoicePoint {
    std::vector<LogicalPathSet> alternatives;
  };
  std::vector<ChoicePoint> points;
  std::vector<bool> input_values(n);
  for (std::uint64_t minterm = 0; minterm < (std::uint64_t{1} << n);
       ++minterm) {
    for (std::size_t i = 0; i < n; ++i) input_values[i] = (minterm >> i) & 1;
    const auto values = simulate(circuit, input_values);
    for (GateId po : circuit.outputs()) {
      const auto systems =
          all_stabilizing_systems(circuit, po, values, /*max_systems=*/4096);
      ChoicePoint point;
      for (const auto& system : systems) {
        LogicalPathSet keys;
        for (const auto& path :
             logical_paths_of_system(circuit, system, values))
          keys.insert(path.key());
        point.alternatives.push_back(std::move(keys));
      }
      points.push_back(std::move(point));
    }
  }

  // Branch-and-bound: order points by number of alternatives (forced
  // ones first), grow the union, prune on the best size so far.
  std::sort(points.begin(), points.end(),
            [](const ChoicePoint& a, const ChoicePoint& b) {
              return a.alternatives.size() < b.alternatives.size();
            });

  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::uint64_t states = 0;
  LogicalPathSet current;
  bool aborted = false;

  std::function<void(std::size_t)> recurse = [&](std::size_t index) {
    if (aborted) return;
    if (++states > max_states) {
      aborted = true;
      return;
    }
    if (current.size() >= best) return;
    if (index == points.size()) {
      best = current.size();
      return;
    }
    for (const auto& alternative : points[index].alternatives) {
      std::vector<const std::vector<std::uint32_t>*> added;
      for (const auto& key : alternative) {
        if (current.insert(key).second) added.push_back(&key);
      }
      recurse(index + 1);
      for (const auto* key : added) current.erase(*key);
      if (aborted) return;
    }
  };
  recurse(0);
  if (aborted) return std::nullopt;
  return best;
}

}  // namespace rd
