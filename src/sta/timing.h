// Static timing analysis over a DelayModel: arrival/departure times,
// critical delay, per-lead slack, and lazy enumeration of the K
// longest paths.
//
// This is the substrate for delay-driven path selection (the
// "expected delay greater than a given threshold" strategy the paper
// discusses in Section VI, after Li/Reddy/Sahni): combined with the
// per-path classifier query it yields "the K longest non-RD paths",
// the practical test list of a delay-test flow.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netlist/circuit.h"
#include "paths/path.h"
#include "sim/timed_sim.h"

namespace rd {

/// Arrival/departure analysis results.
class TimingAnalysis {
 public:
  TimingAnalysis(const Circuit& circuit, const DelayModel& delays);

  /// Latest signal arrival at the gate's output (PIs arrive at their
  /// own gate delay; includes the gate's delay).
  double arrival(GateId id) const { return arrival_[id]; }

  /// Longest delay from this gate's output to any PO (wire + sink
  /// delays downstream; 0 at PO markers).
  double departure(GateId id) const { return departure_[id]; }

  /// Longest PI-to-PO path delay in the circuit.
  double critical_delay() const { return critical_; }

  /// Longest path delay through a lead: arrival(driver) + wire +
  /// departure-from-sink (+ sink gate delay).
  double through(LeadId lead) const;

  /// Slack of a lead against a clock period.
  double slack(LeadId lead, double clock) const {
    return clock - through(lead);
  }

  const Circuit& circuit() const { return *circuit_; }
  const DelayModel& delays() const { return *delays_; }

 private:
  const Circuit* circuit_;
  const DelayModel* delays_;
  std::vector<double> arrival_;
  std::vector<double> departure_;
  double critical_ = 0.0;
};

/// Enumerates physical paths in strictly non-increasing delay order,
/// invoking `visit(path, delay)`; stops after `k` visits or when
/// `visit` returns false.  Lazy best-first search: cost is
/// O(k * path length * log) plus the analysis — independent of the
/// total path count, so it works on circuits with millions of paths.
void k_longest_paths(const TimingAnalysis& timing, std::size_t k,
                     const std::function<bool(const PhysicalPath&, double)>&
                         visit);

}  // namespace rd
