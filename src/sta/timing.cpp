#include "sta/timing.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <stdexcept>

namespace rd {

TimingAnalysis::TimingAnalysis(const Circuit& circuit,
                               const DelayModel& delays)
    : circuit_(&circuit), delays_(&delays) {
  if (delays.gate_delay.size() != circuit.num_gates() ||
      delays.lead_delay.size() != circuit.num_leads())
    throw std::invalid_argument("TimingAnalysis: delay model arity mismatch");

  arrival_.assign(circuit.num_gates(), 0.0);
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    double latest = 0.0;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const double in = arrival_[gate.fanins[pin]] +
                        delays.lead_delay[gate.fanin_leads[pin]];
      latest = std::max(latest, in);
    }
    arrival_[id] = latest + delays.gate_delay[id];
  }

  departure_.assign(circuit.num_gates(), 0.0);
  const auto& topo = circuit.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    double longest = 0.0;
    for (LeadId lead : circuit.gate(id).fanout_leads) {
      const GateId sink = circuit.lead(lead).sink;
      longest = std::max(longest, delays.lead_delay[lead] +
                                      delays.gate_delay[sink] +
                                      departure_[sink]);
    }
    departure_[id] = longest;
  }

  for (GateId po : circuit.outputs())
    critical_ = std::max(critical_, arrival_[po]);
}

double TimingAnalysis::through(LeadId lead) const {
  const Lead& l = circuit_->lead(lead);
  return arrival_[l.driver] + delays_->lead_delay[lead] +
         delays_->gate_delay[l.sink] + departure_[l.sink];
}

namespace {

/// Immutable shared path prefix (avoids copying lead vectors per
/// queue entry).
struct Prefix {
  LeadId lead;
  std::shared_ptr<const Prefix> prev;
};

struct Entry {
  double bound;          // delay so far + departure(tip): exact completion
  double delay_so_far;   // gates + leads up to and including tip
  GateId tip;
  std::shared_ptr<const Prefix> prefix;
  bool operator<(const Entry& other) const { return bound < other.bound; }
};

}  // namespace

void k_longest_paths(const TimingAnalysis& timing, std::size_t k,
                     const std::function<bool(const PhysicalPath&, double)>&
                         visit) {
  const Circuit& circuit = timing.circuit();
  const DelayModel& delays = timing.delays();
  std::priority_queue<Entry> queue;
  for (GateId pi : circuit.inputs()) {
    Entry entry;
    entry.delay_so_far = delays.gate_delay[pi];
    entry.bound = entry.delay_so_far + timing.departure(pi);
    entry.tip = pi;
    queue.push(std::move(entry));
  }

  std::size_t emitted = 0;
  while (!queue.empty() && emitted < k) {
    const Entry entry = queue.top();
    queue.pop();
    const Gate& tip = circuit.gate(entry.tip);
    if (tip.type == GateType::kOutput) {
      PhysicalPath path;
      for (const Prefix* node = entry.prefix.get(); node != nullptr;
           node = node->prev.get())
        path.leads.push_back(node->lead);
      std::reverse(path.leads.begin(), path.leads.end());
      ++emitted;
      if (!visit(path, entry.delay_so_far)) return;
      continue;
    }
    for (LeadId lead : tip.fanout_leads) {
      const GateId sink = circuit.lead(lead).sink;
      Entry next;
      next.delay_so_far = entry.delay_so_far + delays.lead_delay[lead] +
                          delays.gate_delay[sink];
      next.bound = next.delay_so_far + timing.departure(sink);
      next.tip = sink;
      next.prefix = std::make_shared<const Prefix>(
          Prefix{lead, entry.prefix});
      queue.push(std::move(next));
    }
  }
}

}  // namespace rd
