#include "sat/cnf.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "paths/counting.h"

namespace rd {

namespace {

/// Sink for generated clauses: either a solver or a DIMACS text
/// buffer.
struct ClauseSink {
  SatSolver* solver = nullptr;
  std::vector<std::vector<SatLit>>* collected = nullptr;
  void add(std::vector<SatLit> clause) {
    if (solver != nullptr) solver->add_clause(clause);
    if (collected != nullptr) collected->push_back(std::move(clause));
  }
};

/// Clauses for L <-> AND(inputs): (~L v x_i) for all i, and
/// (L v ~x_1 v ... v ~x_k).  OR/NAND/NOR come out of polarity games.
void encode_and(ClauseSink& sink, SatLit output,
                const std::vector<SatLit>& inputs) {
  std::vector<SatLit> big;
  big.reserve(inputs.size() + 1);
  big.push_back(output);
  for (const SatLit input : inputs) {
    sink.add({lit_negate(output), input});
    big.push_back(lit_negate(input));
  }
  sink.add(std::move(big));
}

void encode_equal(ClauseSink& sink, SatLit a, SatLit b) {
  sink.add({lit_negate(a), b});
  sink.add({a, lit_negate(b)});
}

/// Encodes one gate given existing input literals; returns nothing —
/// the output variable is preallocated.
void encode_gate(ClauseSink& sink, const Circuit& circuit, GateId id,
                 const std::vector<SatVar>& vars) {
  const Gate& gate = circuit.gate(id);
  const SatLit out = mk_lit(vars[id]);
  std::vector<SatLit> inputs;
  inputs.reserve(gate.fanins.size());
  for (GateId fanin : gate.fanins) inputs.push_back(mk_lit(vars[fanin]));
  switch (gate.type) {
    case GateType::kInput:
      break;
    case GateType::kOutput:
    case GateType::kBuf:
      encode_equal(sink, out, inputs[0]);
      break;
    case GateType::kNot:
      encode_equal(sink, out, lit_negate(inputs[0]));
      break;
    case GateType::kAnd:
      encode_and(sink, out, inputs);
      break;
    case GateType::kNand:
      encode_and(sink, lit_negate(out), inputs);
      break;
    case GateType::kOr: {
      // OR(x) = ~AND(~x).
      for (SatLit& input : inputs) input = lit_negate(input);
      encode_and(sink, lit_negate(out), inputs);
      break;
    }
    case GateType::kNor: {
      for (SatLit& input : inputs) input = lit_negate(input);
      encode_and(sink, out, inputs);
      break;
    }
  }
}

}  // namespace

CircuitCnf::CircuitCnf(const Circuit& circuit, SatSolver& solver) {
  vars_.resize(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id)
    vars_[id] = solver.new_var();
  ClauseSink sink;
  sink.solver = &solver;
  for (GateId id : circuit.topo_order())
    encode_gate(sink, circuit, id, vars_);
}

std::string write_dimacs_string(const Circuit& circuit) {
  std::vector<SatVar> vars(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id)
    vars[id] = static_cast<SatVar>(id);
  std::vector<std::vector<SatLit>> clauses;
  ClauseSink sink;
  sink.collected = &clauses;
  for (GateId id : circuit.topo_order())
    encode_gate(sink, circuit, id, vars);

  std::ostringstream out;
  out << "c rdfast Tseitin encoding of "
      << (circuit.name().empty() ? "circuit" : circuit.name()) << "\n";
  for (GateId pi : circuit.inputs())
    out << "c input " << circuit.gate(pi).name << " = var " << (pi + 1)
        << "\n";
  for (GateId po : circuit.outputs())
    out << "c output " << circuit.gate(po).name << " = var " << (po + 1)
        << "\n";
  out << "p cnf " << circuit.num_gates() << ' ' << clauses.size() << "\n";
  for (const auto& clause : clauses) {
    for (const SatLit lit : clause)
      out << (lit_negative(lit) ? "-" : "") << (lit_var(lit) + 1) << ' ';
    out << "0\n";
  }
  return out.str();
}

std::optional<bool> sat_sensitizable(const Circuit& circuit,
                                     const CircuitCnf& cnf, SatSolver& solver,
                                     const LogicalPath& path,
                                     Criterion criterion,
                                     const InputSort* sort,
                                     std::uint64_t max_conflicts) {
  if (criterion == Criterion::kInputSort && sort == nullptr)
    throw std::invalid_argument("sat_sensitizable: kInputSort needs a sort");
  std::vector<SatLit> assumptions;
  assumptions.push_back(
      cnf.gate_lit(path_pi(circuit, path.path), path.final_pi_value));
  bool on_path_value = path.final_pi_value;
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    if (has_controlling_value(sink.type)) {
      const bool nc = noncontrolling_value(sink.type);
      for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
        if (pin == lead.pin) continue;
        bool require_nc = false;
        if (on_path_value == nc) {
          require_nc = true;
        } else {
          switch (criterion) {
            case Criterion::kFunctionalSensitizable:
              require_nc = false;
              break;
            case Criterion::kNonRobust:
              require_nc = true;
              break;
            case Criterion::kInputSort:
              require_nc = sort->before(lead.sink, pin, lead.pin);
              break;
          }
        }
        if (require_nc)
          assumptions.push_back(cnf.gate_lit(sink.fanins[pin], nc));
      }
    }
    if (inverts(sink.type)) on_path_value = !on_path_value;
  }
  switch (solver.solve(assumptions, max_conflicts)) {
    case SatResult::kSat: return true;
    case SatResult::kUnsat: return false;
    case SatResult::kUnknown: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> sat_exact_kept_count(const Circuit& circuit,
                                                  Criterion criterion,
                                                  const InputSort* sort,
                                                  std::uint64_t max_paths,
                                                  std::uint64_t max_conflicts) {
  SatSolver solver;
  const CircuitCnf cnf(circuit, solver);
  std::uint64_t kept = 0;
  bool unknown = false;
  const bool complete = enumerate_paths(
      circuit,
      [&](const PhysicalPath& physical) {
        for (const bool final_value : {false, true}) {
          const auto verdict =
              sat_sensitizable(circuit, cnf, solver,
                               LogicalPath{physical, final_value}, criterion,
                               sort, max_conflicts);
          if (!verdict.has_value()) {
            unknown = true;
            return;
          }
          if (*verdict) ++kept;
        }
      },
      max_paths / 2 + 1);
  if (!complete || unknown) return std::nullopt;
  return kept;
}

std::optional<bool> sat_equivalent(const Circuit& a, const Circuit& b,
                                   std::uint64_t max_conflicts) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size())
    return false;
  SatSolver solver;
  const CircuitCnf a_cnf(a, solver);
  const CircuitCnf b_cnf(b, solver);

  // Tie PIs together by name.
  std::unordered_map<std::string, GateId> a_pis;
  for (GateId pi : a.inputs()) a_pis.emplace(a.gate(pi).name, pi);
  for (GateId pi : b.inputs()) {
    const auto it = a_pis.find(b.gate(pi).name);
    if (it == a_pis.end()) return false;
    solver.add_clause({a_cnf.gate_lit(it->second, true),
                       b_cnf.gate_lit(pi, false)});
    solver.add_clause({a_cnf.gate_lit(it->second, false),
                       b_cnf.gate_lit(pi, true)});
  }

  // Miter: some PO pair differs.
  std::unordered_map<std::string, GateId> b_pos;
  for (GateId po : b.outputs()) b_pos.emplace(b.gate(po).name, po);
  std::vector<SatLit> any_difference;
  for (GateId po : a.outputs()) {
    const auto it = b_pos.find(a.gate(po).name);
    if (it == b_pos.end()) return false;
    const SatVar diff = solver.new_var();
    const SatLit d = mk_lit(diff);
    const SatLit x = mk_lit(a_cnf.gate_var(po));
    const SatLit y = mk_lit(b_cnf.gate_var(it->second));
    // d <-> (x XOR y)
    solver.add_clause({lit_negate(d), x, y});
    solver.add_clause({lit_negate(d), lit_negate(x), lit_negate(y)});
    solver.add_clause({d, lit_negate(x), y});
    solver.add_clause({d, x, lit_negate(y)});
    any_difference.push_back(d);
  }
  solver.add_clause(std::move(any_difference));

  switch (solver.solve({}, max_conflicts)) {
    case SatResult::kSat: return false;    // a distinguishing input exists
    case SatResult::kUnsat: return true;   // functionally identical
    case SatResult::kUnknown: return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace rd
