// A compact CDCL SAT solver.
//
// Conflict-driven clause learning with two-watched-literal propagation,
// first-UIP learning with non-chronological backjumping, activity-based
// (VSIDS-style) decision ordering with phase saving, and an incremental
// assumption interface.  It is the third exact engine of the library
// (after exhaustive enumeration and BDDs): circuits are Tseitin-encoded
// once (src/sat/cnf.h) and per-path sensitizability questions become
// solve-under-assumptions queries, which scales to circuits whose BDDs
// are infeasible.
//
// Literal encoding: variable v (0-based) has positive literal 2v and
// negative literal 2v+1 (sign in the low bit).
#pragma once

#include <cstdint>
#include <vector>

#include "util/exec_guard.h"

namespace rd {

using SatVar = std::uint32_t;
using SatLit = std::uint32_t;

constexpr SatLit mk_lit(SatVar var, bool negative = false) {
  return 2 * var + (negative ? 1 : 0);
}
constexpr SatVar lit_var(SatLit lit) { return lit >> 1; }
constexpr bool lit_negative(SatLit lit) { return (lit & 1) != 0; }
constexpr SatLit lit_negate(SatLit lit) { return lit ^ 1; }

enum class SatResult : std::uint8_t { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver() = default;

  /// Creates a fresh variable and returns its index.
  SatVar new_var();
  std::size_t num_vars() const { return assigns_.size(); }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// Returns false if the solver is already in an unsat state.
  bool add_clause(std::vector<SatLit> literals);

  /// Solves under the given assumptions.  kUnknown only if
  /// `max_conflicts` (0 = unlimited) is exhausted or the attached
  /// guard trips — last_abort_reason() distinguishes the causes.
  SatResult solve(const std::vector<SatLit>& assumptions = {},
                  std::uint64_t max_conflicts = 0);

  /// Model access after kSat.
  bool model_value(SatVar var) const { return model_[var]; }

  std::uint64_t conflicts() const { return stats_conflicts_; }
  std::uint64_t decisions() const { return stats_decisions_; }
  std::uint64_t propagations() const { return stats_propagations_; }

  /// Attaches an execution guard: it is polled once per conflict (each
  /// learnt clause also charges its approximate footprint), and a trip
  /// makes the current solve() return kUnknown after backtracking to
  /// level 0 — the solver stays usable.  Pass nullptr to detach.
  void set_guard(ExecGuard* guard) { guard_ = guard; }

  /// Why the most recent solve() returned kUnknown: kWorkBudget for
  /// the conflict budget, otherwise the guard's cause.  kNone after
  /// kSat / kUnsat.
  AbortReason last_abort_reason() const { return last_abort_reason_; }

 private:
  enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  struct Clause {
    std::vector<SatLit> literals;
    bool learnt = false;
  };

  LBool value(SatLit lit) const {
    const LBool assigned = assigns_[lit_var(lit)];
    if (assigned == LBool::kUndef) return LBool::kUndef;
    const bool truth = (assigned == LBool::kTrue) != lit_negative(lit);
    return truth ? LBool::kTrue : LBool::kFalse;
  }

  void enqueue(SatLit lit, std::int32_t reason);
  /// Returns the index of a conflicting clause or -1.
  std::int32_t propagate();
  void analyze(std::int32_t conflict, std::vector<SatLit>& learnt,
               std::uint32_t& backjump_level);
  void backtrack(std::uint32_t level);
  void bump(SatVar var);
  void decay();
  SatLit pick_branch();
  void attach(std::int32_t clause_index);

  std::vector<Clause> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;  // per literal
  std::vector<LBool> assigns_;        // per var
  std::vector<bool> phase_;           // saved phase per var
  std::vector<double> activity_;      // per var
  std::vector<std::uint32_t> level_;  // per var
  std::vector<std::int32_t> reason_;  // per var: clause index or -1
  std::vector<SatLit> trail_;
  std::vector<std::size_t> trail_limits_;
  std::size_t propagate_head_ = 0;
  double activity_increment_ = 1.0;
  bool unsat_ = false;
  std::vector<bool> model_;
  std::vector<bool> seen_;  // scratch for analyze()

  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;

  ExecGuard* guard_ = nullptr;
  AbortReason last_abort_reason_ = AbortReason::kNone;
};

}  // namespace rd
