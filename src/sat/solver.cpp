#include "sat/solver.h"

#include <algorithm>
#include <cmath>

namespace rd {

SatVar SatSolver::new_var() {
  const SatVar var = static_cast<SatVar>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  phase_.push_back(false);
  activity_.push_back(0.0);
  level_.push_back(0);
  reason_.push_back(-1);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

bool SatSolver::add_clause(std::vector<SatLit> literals) {
  if (unsat_) return false;

  // Normalize: sort, dedupe, drop tautologies and false-at-root
  // literals, drop clauses true at root.
  std::sort(literals.begin(), literals.end());
  literals.erase(std::unique(literals.begin(), literals.end()),
                 literals.end());
  std::vector<SatLit> kept;
  for (std::size_t i = 0; i < literals.size(); ++i) {
    const SatLit lit = literals[i];
    if (i + 1 < literals.size() && literals[i + 1] == lit_negate(lit))
      return true;  // tautology
    const LBool val = value(lit);
    if (val == LBool::kTrue && level_[lit_var(lit)] == 0) return true;
    if (val == LBool::kFalse && level_[lit_var(lit)] == 0) continue;
    kept.push_back(lit);
  }

  if (kept.empty()) {
    unsat_ = true;
    return false;
  }
  if (kept.size() == 1) {
    if (value(kept[0]) == LBool::kFalse) {
      unsat_ = true;
      return false;
    }
    if (value(kept[0]) == LBool::kUndef) {
      enqueue(kept[0], -1);
      if (propagate() != -1) {
        unsat_ = true;
        return false;
      }
    }
    return true;
  }
  clauses_.push_back(Clause{std::move(kept), false});
  attach(static_cast<std::int32_t>(clauses_.size() - 1));
  return true;
}

void SatSolver::attach(std::int32_t clause_index) {
  const Clause& clause = clauses_[static_cast<std::size_t>(clause_index)];
  watches_[clause.literals[0]].push_back(clause_index);
  watches_[clause.literals[1]].push_back(clause_index);
}

void SatSolver::enqueue(SatLit lit, std::int32_t reason) {
  const SatVar var = lit_var(lit);
  assigns_[var] = lit_negative(lit) ? LBool::kFalse : LBool::kTrue;
  level_[var] = static_cast<std::uint32_t>(trail_limits_.size());
  reason_[var] = reason;
  trail_.push_back(lit);
}

std::int32_t SatSolver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const SatLit p = trail_[propagate_head_++];
    ++stats_propagations_;
    // Clauses watching ~p just lost that watch.
    const SatLit false_lit = lit_negate(p);
    auto& watch_list = watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::int32_t clause_index = watch_list[i];
      Clause& clause = clauses_[static_cast<std::size_t>(clause_index)];
      auto& lits = clause.literals;
      // Ensure the false watch sits at position 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      if (value(lits[0]) == LBool::kTrue) {
        watch_list[keep++] = clause_index;  // clause satisfied
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t j = 2; j < lits.size(); ++j) {
        if (value(lits[j]) != LBool::kFalse) {
          std::swap(lits[1], lits[j]);
          watches_[lits[1]].push_back(clause_index);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = clause_index;
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: keep the remaining watches intact.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j)
          watch_list[keep++] = watch_list[j];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return clause_index;
      }
      enqueue(lits[0], clause_index);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::bump(SatVar var) {
  activity_[var] += activity_increment_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void SatSolver::decay() { activity_increment_ /= 0.95; }

void SatSolver::analyze(std::int32_t conflict, std::vector<SatLit>& learnt,
                        std::uint32_t& backjump_level) {
  learnt.clear();
  learnt.push_back(0);  // placeholder for the asserting literal
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_limits_.size());
  int counter = 0;
  SatLit p = 0;
  bool have_p = false;
  std::size_t index = trail_.size();
  std::vector<SatVar> touched;

  std::int32_t reason_index = conflict;
  for (;;) {
    const Clause& reason_clause =
        clauses_[static_cast<std::size_t>(reason_index)];
    for (const SatLit q : reason_clause.literals) {
      if (have_p && q == p) continue;
      const SatVar v = lit_var(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = true;
      touched.push_back(v);
      bump(v);
      if (level_[v] == current_level)
        ++counter;
      else
        learnt.push_back(q);
    }
    // Next literal to resolve on: most recent seen trail entry.
    while (!seen_[lit_var(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    have_p = true;
    seen_[lit_var(p)] = false;
    --counter;
    if (counter == 0) break;
    reason_index = reason_[lit_var(p)];
  }
  learnt[0] = lit_negate(p);

  // Backjump level: highest level among the other literals.
  backjump_level = 0;
  std::size_t max_position = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const std::uint32_t lvl = level_[lit_var(learnt[i])];
    if (lvl > backjump_level) {
      backjump_level = lvl;
      max_position = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_position]);
  for (const SatVar v : touched) seen_[v] = false;
}

void SatSolver::backtrack(std::uint32_t target_level) {
  if (trail_limits_.size() <= target_level) return;
  const std::size_t limit = trail_limits_[target_level];
  for (std::size_t i = trail_.size(); i-- > limit;) {
    const SatVar var = lit_var(trail_[i]);
    phase_[var] = assigns_[var] == LBool::kTrue;
    assigns_[var] = LBool::kUndef;
    reason_[var] = -1;
  }
  trail_.resize(limit);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

SatLit SatSolver::pick_branch() {
  double best = -1.0;
  SatVar best_var = 0;
  bool found = false;
  for (SatVar v = 0; v < assigns_.size(); ++v) {
    if (assigns_[v] != LBool::kUndef) continue;
    if (!found || activity_[v] > best) {
      best = activity_[v];
      best_var = v;
      found = true;
    }
  }
  if (!found) return 0;  // caller checks for full assignment separately
  return mk_lit(best_var, !phase_[best_var]);
}

SatResult SatSolver::solve(const std::vector<SatLit>& assumptions,
                           std::uint64_t max_conflicts) {
  last_abort_reason_ = AbortReason::kNone;
  if (unsat_) return SatResult::kUnsat;
  backtrack(0);
  if (propagate() != -1) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  std::uint64_t conflicts_this_call = 0;
  std::uint64_t restart_limit = 128;
  std::uint64_t conflicts_since_restart = 0;
  std::vector<SatLit> learnt;

  for (;;) {
    const std::int32_t conflict = propagate();
    if (conflict != -1) {
      ++stats_conflicts_;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (trail_limits_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::uint32_t backjump_level = 0;
      analyze(conflict, learnt, backjump_level);
      // Never jump back into the middle of the assumption prefix with a
      // learnt unit that might be wrong under other assumptions — the
      // learnt clause itself is globally valid, so plain backjumping is
      // sound; assumptions are re-placed lazily below.
      backtrack(backjump_level);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == LBool::kFalse) {
          unsat_ = true;
          return SatResult::kUnsat;
        }
        if (value(learnt[0]) == LBool::kUndef) enqueue(learnt[0], -1);
      } else {
        clauses_.push_back(Clause{learnt, true});
        const auto index = static_cast<std::int32_t>(clauses_.size() - 1);
        attach(index);
        enqueue(learnt[0], index);
        if (guard_ != nullptr)
          guard_->add_memory(learnt.size() * sizeof(SatLit) + sizeof(Clause));
      }
      decay();
      if (max_conflicts != 0 && conflicts_this_call >= max_conflicts) {
        backtrack(0);
        last_abort_reason_ = AbortReason::kWorkBudget;
        return SatResult::kUnknown;
      }
      if (guard_ != nullptr && !guard_->check()) {
        backtrack(0);
        last_abort_reason_ = guard_->reason();
        return SatResult::kUnknown;
      }
      if (conflicts_since_restart >= restart_limit) {
        conflicts_since_restart = 0;
        restart_limit += restart_limit / 2;
        backtrack(0);
      }
      continue;
    }

    // Place pending assumptions, one decision level each.
    if (trail_limits_.size() < assumptions.size()) {
      const SatLit assumption = assumptions[trail_limits_.size()];
      if (value(assumption) == LBool::kFalse) {
        backtrack(0);
        return SatResult::kUnsat;  // conflicting assumptions
      }
      trail_limits_.push_back(trail_.size());
      if (value(assumption) == LBool::kUndef) enqueue(assumption, -1);
      continue;
    }

    // Decide.
    bool all_assigned = true;
    for (SatVar v = 0; v < assigns_.size(); ++v) {
      if (assigns_[v] == LBool::kUndef) {
        all_assigned = false;
        break;
      }
    }
    if (all_assigned) {
      model_.assign(assigns_.size(), false);
      for (SatVar v = 0; v < assigns_.size(); ++v)
        model_[v] = assigns_[v] == LBool::kTrue;
      backtrack(0);
      return SatResult::kSat;
    }
    ++stats_decisions_;
    trail_limits_.push_back(trail_.size());
    enqueue(pick_branch(), -1);
  }
}

}  // namespace rd
