// Tseitin encoding of circuits into CNF, and SAT-backed exact checks:
// per-path sensitizability as solve-under-assumptions (the scalable
// exact engine behind the approximation-quality experiments) and
// miter-based combinational equivalence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/classify.h"
#include "netlist/circuit.h"
#include "paths/path.h"
#include "sat/solver.h"

namespace rd {

/// One-time Tseitin encoding: one SAT variable per gate, constraint
/// clauses per gate function.  The circuit's consistent assignments
/// biject with the solver's models over these variables.
class CircuitCnf {
 public:
  CircuitCnf(const Circuit& circuit, SatSolver& solver);

  SatVar gate_var(GateId id) const { return vars_[id]; }

  /// Literal asserting "gate output == value".
  SatLit gate_lit(GateId id, bool value) const {
    return mk_lit(vars_[id], /*negative=*/!value);
  }

 private:
  std::vector<SatVar> vars_;
};

/// Exact sensitizability of a logical path under FS / NR / (π1)-(π3):
/// a single incremental SAT query per path against a shared encoding.
/// nullopt if the conflict budget is exhausted.
std::optional<bool> sat_sensitizable(const Circuit& circuit,
                                     const CircuitCnf& cnf, SatSolver& solver,
                                     const LogicalPath& path,
                                     Criterion criterion,
                                     const InputSort* sort = nullptr,
                                     std::uint64_t max_conflicts = 100000);

/// Exact kept-path count via explicit enumeration + SAT queries.
/// nullopt if the enumeration cap or any conflict budget is hit.
std::optional<std::uint64_t> sat_exact_kept_count(
    const Circuit& circuit, Criterion criterion,
    const InputSort* sort = nullptr, std::uint64_t max_paths = 1u << 22,
    std::uint64_t max_conflicts = 100000);

/// Miter-based combinational equivalence (PIs and POs matched by
/// name).  nullopt if the conflict budget is exhausted.
std::optional<bool> sat_equivalent(const Circuit& a, const Circuit& b,
                                   std::uint64_t max_conflicts = 1000000);

/// DIMACS export of a circuit's Tseitin encoding (one variable per
/// gate, 1-based, in GateId order), for interop with external SAT
/// tooling.  A comment header maps PIs and POs to variable indices.
std::string write_dimacs_string(const Circuit& circuit);

}  // namespace rd
