// Shared compiled-circuit cache for the serve layer (DESIGN.md §12).
//
// The daemon's whole point is amortization: parse + input-sort
// construction + CompiledCircuit build are paid once per distinct
// (netlist text, sort spec) pair and then shared read-only by every
// request that names the same content.  An entry bundles everything a
// classify/atpg job needs with stable addresses — the Circuit, the
// InputSort built for the requested heuristic, and the CompiledCircuit
// whose side tables were cut under that sort — so a job just plugs
// entry->compiled into ClassifyOptions::compiled and runs.
//
// Concurrency contract (enforced by tests/serve_test.cpp under TSAN):
// any number of threads may call get() with the same key; exactly one
// of them builds, the rest block until the entry is ready, and nobody
// can observe a partially-built entry — the slot is published to
// waiters only after every field is final.  A failed build (malformed
// netlist, guard abort during the heuristic pre-runs) is propagated to
// every waiter of that round and is NOT cached: the slot is removed,
// so the next request retries instead of replaying a stale error —
// in particular, a request that aborted only because of its own
// deadline must not poison the key for better-budgeted clients.
//
// Eviction is LRU over ready entries, bounded by a capacity in
// entries.  Evicted entries stay alive (shared_ptr) for jobs already
// holding them; the cache just forgets the key.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/input_sort.h"
#include "netlist/circuit.h"
#include "netlist/compiled.h"
#include "sim/closure.h"
#include "util/exec_guard.h"

namespace rd::serve {

struct CacheStats {
  std::uint64_t hits = 0;        // get() served an existing ready entry
  std::uint64_t misses = 0;      // get() triggered a build
  std::uint64_t waits = 0;       // get() blocked on another thread's build
  std::uint64_t evictions = 0;   // LRU evictions
  std::uint64_t failures = 0;    // builds that threw
  std::uint64_t entries = 0;     // ready entries currently cached
};

class CircuitCache {
 public:
  /// `capacity` is in entries; at least 1.
  explicit CircuitCache(std::size_t capacity = 64);
  ~CircuitCache();

  CircuitCache(const CircuitCache&) = delete;
  CircuitCache& operator=(const CircuitCache&) = delete;

  /// One fully built cache entry.  Immutable after publication; the
  /// compiled circuit references `circuit` and `sort` internally, so
  /// the entry is heap-pinned and never moved.
  struct Entry {
    std::uint64_t content_key = 0;   // content_hash of (netlist, spec)
    std::string sort_spec;           // "1" | "2" | "inverse" | "fus"
    Circuit circuit;
    std::optional<InputSort> sort;   // nullopt for "fus" (no π tables)
    std::unique_ptr<const CompiledCircuit> compiled;

    /// Sort-construction observability, mirroring RdIdentification:
    /// wall seconds of the heuristic (cache-build time, paid once) and
    /// the FS/NR pre-run work of Heuristic 2 (deterministic).
    double sort_seconds = 0.0;
    std::uint64_t prerun_work = 0;

    /// Lazily built static implication closure over `compiled`
    /// (DESIGN.md §14): the first request that opts into
    /// --implications pays the build, every later request of the same
    /// entry shares it read-only.  Built without a guard — the closure
    /// outlives any single request's guard, so per-request budgets
    /// must not account (or trip on) cache-resident bytes.  mutable:
    /// entries are published as shared_ptr<const Entry>.
    /// Sets *built_now (when non-null) to whether THIS call ran the
    /// build (false: served an already-resident closure).
    const StaticClosure* shared_closure(bool* built_now = nullptr) const;
    mutable std::once_flag closure_once;
    mutable std::unique_ptr<const StaticClosure> closure;
    mutable double closure_seconds = 0.0;  // wall time of the one build
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// Knobs for the (at most one) build a get() may run: the heuristic
  /// pre-runs honor the requesting job's thread budget, work limit and
  /// guard, so an abusive build degrades to that job's typed abort.
  struct BuildOptions {
    std::size_t num_threads = 1;
    std::uint64_t work_limit = std::uint64_t{1} << 62;
    ExecGuard* guard = nullptr;
  };

  /// Returns the ready entry for (netlist_text, sort_spec), building
  /// it first if needed.  `circuit_name` only labels a fresh build (a
  /// hit keeps the name it was built under).  Sets *was_hit when
  /// non-null.  When `generator` is set, a fresh build obtains the
  /// Circuit from it instead of parsing `netlist_text` — the builtin
  /// request path uses this so a daemon-built c432 is the *same*
  /// Circuit object graph (gate numbering included) the one-shot CLI
  /// classifies, keeping results bit-identical; `netlist_text` then
  /// only serves as the content key.  Throws what the build threw:
  /// std::runtime_error on a malformed netlist, GuardTrippedError on a
  /// guard/work abort during the pre-runs, std::invalid_argument on an
  /// unknown sort spec.
  EntryPtr get(const std::string& netlist_text,
               const std::string& circuit_name, const std::string& sort_spec,
               const BuildOptions& build, bool* was_hit = nullptr,
               const std::function<Circuit()>& generator = nullptr);

  /// FNV-1a 64 over the netlist text and the sort spec (the cache key
  /// identity reported back to clients; lookups use the full content,
  /// so a hash collision can never alias two circuits).
  static std::uint64_t content_hash(std::string_view netlist_text,
                                    std::string_view sort_spec);

  CacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot;

  static EntryPtr build_entry(const std::string& netlist_text,
                              const std::string& circuit_name,
                              const std::string& sort_spec,
                              const BuildOptions& build,
                              const std::function<Circuit()>& generator);

  std::size_t capacity_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rd::serve
