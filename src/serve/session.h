// Request execution shared by `rdfast serve` and one-shot callers
// (DESIGN.md §12).
//
// A Session turns one request frame (JSON text) into one response
// frame (a schema-valid run report — validate_run_report accepts every
// frame a Session produces).  It owns the full pipeline the CLI's
// classify/atpg commands used to inline: field extraction with strict
// typing, circuit resolution (builtin name or inline .bench text),
// per-request ExecGuard construction (deadline / memory / injection
// QoS chained onto the server's cancellation token), the cache lookup,
// the classify/ATPG run, and report assembly.  The daemon and the
// `rdfast request` one-shot path call the same handle(), so their
// deterministic output fields are bit-identical by construction — the
// only difference a cache makes is *when* the CompiledCircuit was
// built, never what it contains.
//
// Request schema (all requests are JSON objects):
//   {"op": "ping" | "stats" | "shutdown" | "validate"
//        | "classify" | "atpg",
//    "id": <uint, optional — echoed on the response>}
// plus per-op fields:
//   validate:  "report": <object to check against the run-report schema>
//   classify:  "circuit": {"builtin": "c432"} | {"name": N, "bench": T},
//              "heuristic": "1"|"2"|"inverse"|"fus" (default "2"),
//              "work_limit", "threads", "lanes" (uints, optional),
//              "incremental": bool (optional — cone-cached ECO mode;
//                             the response carries an "eco" block and
//                             per-request serve.cone_cache counters),
//              "guard": {"deadline_ms", "max_memory_mb",
//                        "inject_abort_after", "inject_abort_reason"}
//   atpg:      circuit/threads/guard as classify, plus "max_paths"
//
// handle() never throws: malformed input becomes a "serve_error" frame
// with a stable machine code, and a guard abort becomes the same
// partial-but-valid report the CLI writes for an aborted run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cache/cone_cache.h"
#include "io/json_writer.h"
#include "serve/circuit_cache.h"
#include "util/exec_guard.h"

namespace rd::serve {

struct SessionConfig {
  /// Shared compiled-circuit cache.  Null runs every request cold
  /// (parse + sort + compile, no reuse) — the one-shot parity mode the
  /// bit-identity tests compare the daemon against.
  CircuitCache* cache = nullptr;

  /// Shared cone cache for {"incremental": true} classify requests.
  /// Null gives each such request a private, empty store (correct but
  /// reuse-free).  Not owned.
  ConeCacheStore* cone_cache = nullptr;

  /// Server-lifetime cancellation, chained into every request guard so
  /// daemon shutdown aborts in-flight jobs cooperatively.
  CancellationToken* cancel = nullptr;

  /// Extra payload merged into "stats" responses (the server injects
  /// its connection/queue counters here).
  std::function<JsonValue()> extra_stats;
};

struct RequestOutcome {
  /// The response frame payload; always passes validate_run_report.
  JsonValue response;

  /// True for a granted {"op": "shutdown"} — the server stops
  /// accepting work after sending the response.
  bool shutdown = false;
};

class Session {
 public:
  explicit Session(SessionConfig config);

  /// Executes one request (JSON text of one frame).  Never throws.
  RequestOutcome handle(const std::string& request_text);

 private:
  JsonValue run_classify(const JsonValue& request, std::uint64_t id,
                         bool has_id);
  JsonValue run_atpg(const JsonValue& request, std::uint64_t id, bool has_id);

  SessionConfig config_;
};

}  // namespace rd::serve
