#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/run_report.h"
#include "serve/frame.h"
#include "serve/job_queue.h"
#include "serve/session.h"

namespace rd::serve {

namespace {

/// One accepted connection.  The reader thread owns the decoder; jobs
/// on the queue share the write side through `write_mutex` so frames
/// of concurrently completing responses never interleave.
struct Connection {
  int fd = -1;
  std::mutex write_mutex;
  bool write_failed = false;
};
using ConnectionPtr = std::shared_ptr<Connection>;

/// Blocking full-buffer send; false on any transport failure (the
/// client vanished — nothing to do but stop writing to it).
bool send_all(const ConnectionPtr& conn, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->write_failed) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(conn->fd, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->write_failed = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  ServerConfig config;
  CircuitCache cache;
  ConeCacheStore cone_cache;     // shared across all request threads
  CancellationToken job_cancel;  // tripped by request_stop()
  std::unique_ptr<Session> session;
  std::unique_ptr<JobQueue> jobs;

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::thread accept_thread;

  std::mutex mutex;
  std::condition_variable stopped_cv;
  bool stop_requested = false;
  bool accept_done = false;
  bool external_stop = false;  // stop came from config.cancel
  std::vector<ConnectionPtr> connections;
  std::vector<std::thread> readers;
  Stats stats;

  explicit Impl(ServerConfig cfg)
      : config(cfg), cache(cfg.cache_capacity) {}

  std::size_t max_frame_bytes() const {
    return config.max_frame_bytes == 0 ? kDefaultMaxFrameBytes
                                       : config.max_frame_bytes;
  }

  bool stopping() {
    std::lock_guard<std::mutex> lock(mutex);
    return stop_requested;
  }

  void bump(std::uint64_t Stats::* field) {
    std::lock_guard<std::mutex> lock(mutex);
    ++(stats.*field);
  }

  void reader_loop(ConnectionPtr conn);
  void accept_loop(Server* server);
};

void Server::Impl::reader_loop(ConnectionPtr conn) {
  FrameDecoder decoder(max_frame_bytes());
  char buffer[16384];
  bool closed = false;
  while (!closed) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown() on stop)
    decoder.feed(buffer, static_cast<std::size_t>(n));
    for (;;) {
      std::string payload;
      const FrameDecoder::Status status = decoder.next(&payload);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        // The stream cannot be resynchronized after a framing error:
        // explain, then drop the connection.
        bump(&Stats::protocol_errors);
        send_all(conn, encode_frame(
                           serve_error_report(0, false, "frame_too_large",
                                              decoder.error())
                               .to_string()));
        closed = true;
        break;
      }
      bump(&Stats::requests);
      auto job = [this, conn, payload = std::move(payload)] {
        RequestOutcome outcome = session->handle(payload);
        if (send_all(conn, encode_frame(outcome.response.to_string())))
          bump(&Stats::responses);
        if (outcome.shutdown) {
          std::lock_guard<std::mutex> lock(mutex);
          // Grant the shutdown *after* the ack was written; the
          // accept loop observes the flag and unwinds.
          stop_requested = true;
        }
      };
      if (!jobs->submit(std::move(job))) {
        if (send_all(conn, encode_frame(
                               serve_error_report(0, false, "shutting_down",
                                                  "server is shutting down")
                                   .to_string())))
          bump(&Stats::responses);
        closed = true;
        break;
      }
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::Impl::accept_loop(Server* server) {
  for (;;) {
    if (config.cancel != nullptr && config.cancel->requested()) {
      std::lock_guard<std::mutex> lock(mutex);
      stop_requested = true;
      external_stop = true;
    }
    if (stopping()) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.connections;
      connections.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }
  // Tear down: make every blocked recv() return, so readers exit.
  server->request_stop();
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const ConnectionPtr& conn : connections)
      ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex);
    to_join.swap(readers);
  }
  for (std::thread& reader : to_join)
    if (reader.joinable()) reader.join();
  // Drain queued jobs (their guards are cancelled, so they finish
  // promptly with typed aborted responses), then close the sockets.
  jobs->stop(/*drain=*/true);
  // All request threads are quiet now: persist the cone cache once,
  // atomically.  A save failure must not turn shutdown into a crash —
  // the cache is an accelerator, losing it only costs a cold start.
  if (!config.cone_cache_dir.empty()) {
    try {
      cone_cache.save(config.cone_cache_dir);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "serve: cone cache save failed: %s\n",
                   error.what());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (const ConnectionPtr& conn : connections) ::close(conn->fd);
    connections.clear();
    accept_done = true;
  }
  stopped_cv.notify_all();
}

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(config)) {
  SessionConfig session_config;
  session_config.cache = &impl_->cache;
  session_config.cone_cache = &impl_->cone_cache;
  session_config.cancel = &impl_->job_cancel;
  Impl* impl = impl_.get();
  session_config.extra_stats = [impl] {
    JsonValue stats = JsonValue::object();
    Stats snapshot;
    {
      std::lock_guard<std::mutex> lock(impl->mutex);
      snapshot = impl->stats;
    }
    JsonValue server_json = JsonValue::object();
    server_json.set("connections", JsonValue::number(snapshot.connections));
    server_json.set("requests", JsonValue::number(snapshot.requests));
    server_json.set("responses", JsonValue::number(snapshot.responses));
    server_json.set("protocol_errors",
                    JsonValue::number(snapshot.protocol_errors));
    stats.set("server", std::move(server_json));
    const JobQueue::Stats queue = impl->jobs != nullptr
                                      ? impl->jobs->stats()
                                      : JobQueue::Stats{};
    JsonValue queue_json = JsonValue::object();
    queue_json.set("submitted", JsonValue::number(queue.submitted));
    queue_json.set("completed", JsonValue::number(queue.completed));
    queue_json.set("rejected", JsonValue::number(queue.rejected));
    queue_json.set("queued", JsonValue::number(
                                 static_cast<std::uint64_t>(queue.queued)));
    queue_json.set("workers", JsonValue::number(
                                  static_cast<std::uint64_t>(queue.workers)));
    stats.set("queue", std::move(queue_json));
    return stats;
  };
  impl_->session = std::make_unique<Session>(std::move(session_config));
}

Server::~Server() {
  request_stop();
  if (impl_->accept_thread.joinable()) wait();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

void Server::start() {
  Impl& impl = *impl_;
  impl.jobs = std::make_unique<JobQueue>(impl.config.num_workers);

  // Warm the cone cache before accepting work; damage degrades to a
  // colder cache via the recovery ladder, never a failed start.
  if (!impl.config.cone_cache_dir.empty())
    impl.cone_cache.load(impl.config.cone_cache_dir);

  impl.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl.listen_fd < 0)
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(impl.config.port);
  if (::bind(impl.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(impl.config.port) + ": " +
                             std::strerror(errno));
  if (::listen(impl.listen_fd, 64) != 0)
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(errno));

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(impl.listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw std::runtime_error(std::string("serve: getsockname: ") +
                             std::strerror(errno));
  impl.bound_port = ntohs(bound.sin_port);

  impl.accept_thread = std::thread([this] { impl_->accept_loop(this); });
}

std::uint16_t Server::port() const { return impl_->bound_port; }

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop_requested = true;
  }
  // Cancel in-flight jobs: their guards observe the token at the next
  // checkpoint and abort with AbortReason::kCancelled.
  impl_->job_cancel.request();
}

bool Server::wait() {
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->stopped_cv.wait(lock, [this] { return impl_->accept_done; });
  return impl_->external_stop;
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

CircuitCache& Server::cache() { return impl_->cache; }

ConeCacheStore& Server::cone_cache() { return impl_->cone_cache; }

}  // namespace rd::serve
