#include "serve/session.h"

#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "atpg/testset.h"
#include "cache/eco_classify.h"
#include "core/classify.h"
#include "core/heuristics.h"
#include "gen/examples.h"
#include "gen/iscas_like.h"
#include "io/bench_io.h"
#include "io/run_report.h"
#include "sim/implication_bitpar.h"
#include "util/metrics.h"

namespace rd::serve {

namespace {

/// Client-attributable request defects; handle() maps this to a
/// "bad_request" serve_error (anything else that escapes is
/// "internal").
struct BadRequest : std::runtime_error {
  using std::runtime_error::runtime_error;
};

std::uint64_t get_uint(const JsonValue& request, std::string_view key,
                       std::uint64_t fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number())
    throw BadRequest("field '" + std::string(key) + "' must be a number");
  try {
    return value->as_uint64();
  } catch (const std::runtime_error&) {
    throw BadRequest("field '" + std::string(key) +
                     "' must be an unsigned 64-bit integer");
  }
}

double get_nonneg_double(const JsonValue& request, std::string_view key,
                         double fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number())
    throw BadRequest("field '" + std::string(key) + "' must be a number");
  const double parsed = value->as_double();
  if (!(parsed >= 0.0))
    throw BadRequest("field '" + std::string(key) + "' must be >= 0");
  return parsed;
}

std::string get_string(const JsonValue& request, std::string_view key,
                       std::string fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_string())
    throw BadRequest("field '" + std::string(key) + "' must be a string");
  return value->as_string();
}

bool get_bool(const JsonValue& request, std::string_view key, bool fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_bool())
    throw BadRequest("field '" + std::string(key) + "' must be a bool");
  return value->as_bool();
}

/// Resolves the request's "circuit" object to (name, content key
/// text, optional generator).  Builtins are rendered to text for the
/// cache key (content identity) but rebuilt through the generator on a
/// cache miss, so a daemon-built builtin is the *same* Circuit object
/// graph — gate numbering included — that the one-shot CLI classifies.
/// The builtin key text carries a marker prefix so it can never
/// collide with an inline netlist whose text happens to match the
/// rendered form (the two parse paths may number gates differently).
void resolve_circuit(const JsonValue& request, std::string* name,
                     std::string* key_text,
                     std::function<Circuit()>* generator) {
  const JsonValue* circuit = request.find("circuit");
  if (circuit == nullptr || !circuit->is_object())
    throw BadRequest("field 'circuit' must be an object");
  const JsonValue* builtin = circuit->find("builtin");
  if (builtin != nullptr) {
    if (!builtin->is_string())
      throw BadRequest("field 'circuit.builtin' must be a string");
    const std::string spec = builtin->as_string();
    Circuit generated;
    try {
      if (spec == "example")
        generated = paper_example_circuit();
      else if (spec == "c17")
        generated = c17();
      else
        generated = make_benchmark(spec);
    } catch (const std::invalid_argument& error) {
      throw BadRequest("unknown builtin circuit '" + spec +
                       "': " + error.what());
    }
    *name = generated.name();
    *key_text = "builtin\n" + write_bench_string(generated);
    *generator = [spec] {
      if (spec == "example") return paper_example_circuit();
      if (spec == "c17") return c17();
      return make_benchmark(spec);
    };
    return;
  }
  const JsonValue* bench = circuit->find("bench");
  if (bench == nullptr || !bench->is_string())
    throw BadRequest("field 'circuit' needs 'builtin' or a 'bench' string");
  *key_text = bench->as_string();
  *name = get_string(*circuit, "name", "request");
  *generator = nullptr;
}

/// Per-request guard assembly, mirroring the CLI's GuardFlags: the
/// same QoS knobs and the same deterministic fault injection, but
/// scoped to one request and chained onto the server's cancel token.
struct GuardSpec {
  double deadline_ms = 0.0;
  std::uint64_t max_memory_mb = 0;
  std::uint64_t inject_abort_after = 0;
  std::string inject_abort_reason = "work_budget";

  static GuardSpec from_request(const JsonValue& request) {
    GuardSpec spec;
    const JsonValue* guard = request.find("guard");
    if (guard == nullptr) return spec;
    if (!guard->is_object())
      throw BadRequest("field 'guard' must be an object");
    spec.deadline_ms = get_nonneg_double(*guard, "deadline_ms", 0.0);
    spec.max_memory_mb = get_uint(*guard, "max_memory_mb", 0);
    spec.inject_abort_after = get_uint(*guard, "inject_abort_after", 0);
    spec.inject_abort_reason =
        get_string(*guard, "inject_abort_reason", "work_budget");
    return spec;
  }

  ExecGuardOptions options(CancellationToken* cancel) const {
    ExecGuardOptions options;
    options.deadline_seconds = deadline_ms / 1000.0;
    options.memory_limit_bytes = max_memory_mb * 1024 * 1024;
    options.cancel = cancel;
    return options;
  }

  void arm(ExecGuard& guard) const {
    if (inject_abort_after == 0) return;
    AbortReason reason;
    if (inject_abort_reason == "deadline")
      reason = AbortReason::kDeadline;
    else if (inject_abort_reason == "memory")
      reason = AbortReason::kMemory;
    else if (inject_abort_reason == "cancelled")
      reason = AbortReason::kCancelled;
    else if (inject_abort_reason == "work_budget")
      reason = AbortReason::kWorkBudget;
    else
      throw BadRequest("unknown guard.inject_abort_reason '" +
                       inject_abort_reason + "'");
    guard.inject_trip_at(inject_abort_after, reason);
  }
};

/// The {"serve": ...} payload attached to every job report.  Beyond
/// the per-request hit/miss verdict it snapshots the shared cache's
/// pressure counters (evictions, build failures), so a client can see
/// churn without a separate stats round-trip.
JsonValue serve_payload(std::uint64_t id, bool has_id, bool cache_hit,
                        std::uint64_t content_key,
                        const CircuitCache* cache) {
  JsonValue payload = JsonValue::object();
  payload.set("id", has_id ? JsonValue::number(id) : JsonValue::null());
  payload.set("cache_hit", JsonValue::boolean(cache_hit));
  payload.set("circuit_key", JsonValue::number(content_key));
  if (cache != nullptr) {
    const CacheStats stats = cache->stats();
    payload.set("cache_evictions", JsonValue::number(stats.evictions));
    payload.set("cache_failures", JsonValue::number(stats.failures));
  }
  return payload;
}

std::string heuristic_spec(const JsonValue& request) {
  const std::string heuristic = get_string(request, "heuristic", "2");
  if (heuristic != "1" && heuristic != "2" && heuristic != "inverse" &&
      heuristic != "fus")
    throw BadRequest("field 'heuristic' must be 1, 2, inverse or fus");
  return heuristic;
}

}  // namespace

Session::Session(SessionConfig config) : config_(std::move(config)) {}

RequestOutcome Session::handle(const std::string& request_text) {
  RequestOutcome outcome;
  JsonValue request;
  try {
    request = parse_json(request_text);
  } catch (const std::runtime_error& error) {
    outcome.response =
        serve_error_report(0, /*has_id=*/false, "parse_error", error.what());
    return outcome;
  }

  std::uint64_t id = 0;
  bool has_id = false;
  try {
    if (!request.is_object()) throw BadRequest("request must be a JSON object");
    const JsonValue* id_field = request.find("id");
    if (id_field != nullptr && !id_field->is_null()) {
      id = get_uint(request, "id", 0);
      has_id = true;
    }
    const std::string op = get_string(request, "op", "");
    if (op.empty()) throw BadRequest("field 'op' must name an operation");

    if (op == "ping") {
      outcome.response = serve_ack_report(id, has_id);
      outcome.response.set("op", JsonValue::string("ping"));
      return outcome;
    }
    if (op == "shutdown") {
      outcome.response = serve_ack_report(id, has_id);
      outcome.response.set("op", JsonValue::string("shutdown"));
      outcome.shutdown = true;
      return outcome;
    }
    if (op == "stats") {
      outcome.response = serve_ack_report(id, has_id);
      outcome.response.set("op", JsonValue::string("stats"));
      JsonValue stats = config_.extra_stats ? config_.extra_stats()
                                            : JsonValue::object();
      if (config_.cache != nullptr) {
        const CacheStats cache = config_.cache->stats();
        JsonValue cache_json = JsonValue::object();
        cache_json.set("hits", JsonValue::number(cache.hits));
        cache_json.set("misses", JsonValue::number(cache.misses));
        cache_json.set("waits", JsonValue::number(cache.waits));
        cache_json.set("evictions", JsonValue::number(cache.evictions));
        cache_json.set("failures", JsonValue::number(cache.failures));
        cache_json.set("entries", JsonValue::number(cache.entries));
        cache_json.set("capacity", JsonValue::number(static_cast<std::uint64_t>(
                                       config_.cache->capacity())));
        stats.set("cache", std::move(cache_json));
      }
      if (config_.cone_cache != nullptr) {
        const ConeCacheStore::Stats cone = config_.cone_cache->stats();
        JsonValue cone_json = JsonValue::object();
        cone_json.set("records", JsonValue::number(cone.records));
        cone_json.set("hits", JsonValue::number(cone.hits));
        cone_json.set("misses", JsonValue::number(cone.misses));
        cone_json.set("loaded", JsonValue::number(cone.loaded));
        cone_json.set("stale_loaded", JsonValue::number(cone.stale_loaded));
        cone_json.set("evictions", JsonValue::number(cone.evictions));
        cone_json.set("recovered", JsonValue::number(cone.recovery.total()));
        stats.set("cone_cache", std::move(cone_json));
      }
      outcome.response.set("stats", std::move(stats));
      return outcome;
    }
    if (op == "validate") {
      const JsonValue* report = request.find("report");
      if (report == nullptr)
        throw BadRequest("field 'report' must hold the report to validate");
      const std::vector<std::string> problems = validate_run_report(*report);
      outcome.response = serve_ack_report(id, has_id);
      outcome.response.set("op", JsonValue::string("validate"));
      outcome.response.set("valid", JsonValue::boolean(problems.empty()));
      JsonValue problems_json = JsonValue::array();
      for (const std::string& problem : problems)
        problems_json.append(JsonValue::string(problem));
      outcome.response.set("problems", std::move(problems_json));
      return outcome;
    }
    if (op == "classify") {
      outcome.response = run_classify(request, id, has_id);
      return outcome;
    }
    if (op == "atpg") {
      outcome.response = run_atpg(request, id, has_id);
      return outcome;
    }
    throw BadRequest("unknown op '" + op + "'");
  } catch (const BadRequest& error) {
    outcome.response = serve_error_report(id, has_id, "bad_request",
                                          error.what());
    return outcome;
  } catch (const std::exception& error) {
    outcome.response =
        serve_error_report(id, has_id, "internal", error.what());
    return outcome;
  }
}

JsonValue Session::run_classify(const JsonValue& request, std::uint64_t id,
                                bool has_id) {
  std::string name;
  std::string bench_text;
  std::function<Circuit()> generator;
  resolve_circuit(request, &name, &bench_text, &generator);
  const std::string heuristic = heuristic_spec(request);

  ClassifyOptions base;
  base.work_limit = get_uint(request, "work_limit", base.work_limit);
  base.num_threads = static_cast<std::size_t>(
      get_uint(request, "threads", base.num_threads));
  base.lanes = static_cast<std::size_t>(get_uint(request, "lanes", base.lanes));
  // Strict bound, not a clamp: a lane width this build cannot provide
  // is a typed bad_request, mirroring the CLI's exit-2 usage error.
  if (base.lanes < 1 || base.lanes > kMaxLanes)
    throw BadRequest("field 'lanes' must be 1.." + std::to_string(kMaxLanes));
  const std::string implications = get_string(request, "implications", "off");
  if (implications == "closure") {
    base.implications = ImplicationTier::kClosure;
  } else if (implications == "learned") {
    base.implications = ImplicationTier::kLearned;
  } else if (implications != "off") {
    throw BadRequest("field 'implications' must be off, closure or learned");
  }

  const GuardSpec guard_spec = GuardSpec::from_request(request);
  ExecGuard guard(guard_spec.options(config_.cancel));
  guard_spec.arm(guard);
  base.guard = &guard;

  if (get_bool(request, "incremental", false)) {
    // Cone-cached ECO mode: the compiled-circuit cache is bypassed —
    // reuse lives at cone granularity in the shared ConeCacheStore,
    // which survives across requests (and daemon restarts when the
    // server persists it).
    if (base.implications == ImplicationTier::kLearned)
      throw BadRequest(
          "'implications': 'learned' does not compose with incremental mode "
          "(learned kept sets would poison cached cone records)");
    Circuit circuit;
    try {
      circuit = generator ? generator() : read_bench_string(bench_text, name);
    } catch (const std::exception& error) {
      throw BadRequest(std::string("cannot load circuit: ") + error.what());
    }
    ConeCacheStore private_store;
    ConeCacheStore& store =
        config_.cone_cache != nullptr ? *config_.cone_cache : private_store;
    EcoOptions eco_options;
    eco_options.sort_spec = heuristic;
    eco_options.base = base;
    EcoResult eco = classify_eco(circuit, store, eco_options);

    RdIdentification rd;
    rd.classify = std::move(eco.classify);
    rd.sort_seconds = eco.stats.sort_seconds;
    rd.prerun_work = eco.stats.prerun_work;
    MetricsRegistry metrics;
    record_classify_metrics(rd.classify, metrics);
    JsonValue report =
        classify_run_report(circuit.name(), "eco:" + heuristic, rd, &metrics);
    const ConeCacheStore::Stats store_stats = store.stats();
    report.set("eco", eco_json(eco.stats, store_stats));
    JsonValue payload = serve_payload(
        id, has_id, /*cache_hit=*/false,
        CircuitCache::content_hash(bench_text, heuristic), config_.cache);
    JsonValue cone_cache_json = JsonValue::object();
    cone_cache_json.set("hits", JsonValue::number(eco.stats.hits));
    cone_cache_json.set("misses", JsonValue::number(eco.stats.misses));
    cone_cache_json.set("recovered",
                        JsonValue::number(store_stats.recovery.total()));
    payload.set("cone_cache", std::move(cone_cache_json));
    report.set("serve", std::move(payload));
    return report;
  }

  // One-shot mode (no shared cache) still funnels through a private
  // single-entry cache: identical build path, zero reuse.
  CircuitCache one_shot(1);
  CircuitCache& cache = config_.cache != nullptr ? *config_.cache : one_shot;
  const std::uint64_t content_key =
      CircuitCache::content_hash(bench_text, heuristic);

  CircuitCache::BuildOptions build;
  build.num_threads = base.num_threads;
  build.work_limit = base.work_limit;
  build.guard = &guard;
  bool cache_hit = false;
  CircuitCache::EntryPtr entry;
  try {
    entry = cache.get(bench_text, name, heuristic, build, &cache_hit,
                      generator);
  } catch (const GuardTrippedError& tripped) {
    // Build aborted under this request's own budget: report it like
    // any aborted run — typed reason, schema-valid partial report.
    RdIdentification rd;
    rd.classify.completed = false;
    rd.classify.abort_reason = tripped.reason();
    MetricsRegistry metrics;
    record_classify_metrics(rd.classify, metrics);
    JsonValue report =
        classify_run_report(name, heuristic, rd, &metrics);
    report.set("serve", serve_payload(id, has_id, false, content_key, &cache));
    return report;
  } catch (const std::invalid_argument& error) {
    throw BadRequest(error.what());
  } catch (const std::runtime_error& error) {
    throw BadRequest(std::string("cannot load circuit: ") + error.what());
  }

  ClassifyOptions options = base;
  if (entry->sort.has_value()) {
    options.criterion = Criterion::kInputSort;
    options.sort = &*entry->sort;
  } else {
    options.criterion = Criterion::kFunctionalSensitizable;
    options.sort = nullptr;
  }
  options.compiled = entry->compiled.get();
  // The closure is entry-resident like the compiled circuit: built by
  // the first opted-in request (outside this request's guard, since it
  // outlives it) and shared read-only afterwards.
  bool closure_built_now = false;
  if (options.implications != ImplicationTier::kOff)
    options.closure = entry->shared_closure(&closure_built_now);

  RdIdentification rd;
  rd.classify = classify_paths(entry->circuit, options);
  rd.sort_seconds = entry->sort_seconds;
  rd.prerun_work = entry->prerun_work;

  MetricsRegistry metrics;
  record_classify_metrics(rd.classify, metrics);
  JsonValue report =
      classify_run_report(entry->circuit.name(), heuristic, rd, &metrics);
  JsonValue payload = serve_payload(id, has_id, cache_hit, content_key, &cache);
  if (options.implications != ImplicationTier::kOff) {
    JsonValue closure_payload = JsonValue::object();
    closure_payload.set("cached", JsonValue::boolean(!closure_built_now));
    closure_payload.set("build_seconds",
                        JsonValue::number(entry->closure_seconds));
    payload.set("closure", std::move(closure_payload));
  }
  report.set("serve", std::move(payload));
  return report;
}

JsonValue Session::run_atpg(const JsonValue& request, std::uint64_t id,
                            bool has_id) {
  std::string name;
  std::string bench_text;
  std::function<Circuit()> generator;
  resolve_circuit(request, &name, &bench_text, &generator);
  const std::uint64_t max_paths = get_uint(request, "max_paths", 20000);

  ClassifyOptions options;
  options.collect_paths_limit = max_paths;
  options.num_threads =
      static_cast<std::size_t>(get_uint(request, "threads", 1));

  const GuardSpec guard_spec = GuardSpec::from_request(request);
  ExecGuard guard(guard_spec.options(config_.cancel));
  guard_spec.arm(guard);
  options.guard = &guard;

  CircuitCache one_shot(1);
  CircuitCache& cache = config_.cache != nullptr ? *config_.cache : one_shot;
  const std::uint64_t content_key = CircuitCache::content_hash(bench_text, "2");

  CircuitCache::BuildOptions build;
  build.num_threads = options.num_threads;
  build.work_limit = options.work_limit;
  build.guard = &guard;
  bool cache_hit = false;
  CircuitCache::EntryPtr entry;
  try {
    entry = cache.get(bench_text, name, "2", build, &cache_hit, generator);
  } catch (const GuardTrippedError& tripped) {
    RdIdentification rd;
    rd.classify.completed = false;
    rd.classify.abort_reason = tripped.reason();
    GeneratedTestSet never_ran;
    never_ran.completed = false;
    never_ran.abort_reason = tripped.reason();
    MetricsRegistry metrics;
    record_classify_metrics(rd.classify, metrics);
    JsonValue report = atpg_run_report(name, rd, never_ran, &metrics);
    report.set("serve", serve_payload(id, has_id, false, content_key, &cache));
    return report;
  } catch (const std::invalid_argument& error) {
    throw BadRequest(error.what());
  } catch (const std::runtime_error& error) {
    throw BadRequest(std::string("cannot load circuit: ") + error.what());
  }

  options.criterion = Criterion::kInputSort;
  options.sort = &*entry->sort;
  options.compiled = entry->compiled.get();

  RdIdentification rd;
  rd.classify = classify_paths(entry->circuit, options);
  rd.sort_seconds = entry->sort_seconds;
  rd.prerun_work = entry->prerun_work;

  MetricsRegistry metrics;
  record_classify_metrics(rd.classify, metrics);

  if (!rd.classify.completed) {
    const AbortReason reason = rd.classify.abort_reason == AbortReason::kNone
                                   ? AbortReason::kWorkBudget
                                   : rd.classify.abort_reason;
    GeneratedTestSet never_ran;
    never_ran.completed = false;
    never_ran.abort_reason = reason;
    JsonValue report =
        atpg_run_report(entry->circuit.name(), rd, never_ran, &metrics);
    report.set("serve", serve_payload(id, has_id, cache_hit, content_key, &cache));
    return report;
  }
  if (rd.classify.kept_paths > max_paths)
    throw BadRequest("too many must-test paths for ATPG (cap " +
                     std::to_string(max_paths) + "); raise max_paths");

  std::vector<LogicalPath> paths;
  paths.reserve(rd.classify.kept_keys.size());
  for (const auto& key : rd.classify.kept_keys) {
    LogicalPath path;
    path.path.leads.assign(key.begin(), key.end() - 1);
    path.final_pi_value = key.back() != 0;
    paths.push_back(std::move(path));
  }
  TestSetOptions testset_options;
  testset_options.guard = &guard;
  const GeneratedTestSet set =
      generate_test_set(entry->circuit, paths, testset_options);

  metrics.add_counter("atpg.robust_nodes", set.robust_nodes);
  metrics.add_counter("atpg.nonrobust_nodes", set.nonrobust_nodes);
  metrics.add_timer("atpg.wall", set.wall_seconds);
  JsonValue report = atpg_run_report(entry->circuit.name(), rd, set, &metrics);
  report.set("serve", serve_payload(id, has_id, cache_hit, content_key, &cache));
  return report;
}

}  // namespace rd::serve
