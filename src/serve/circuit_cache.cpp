#include "serve/circuit_cache.h"

#include <condition_variable>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/classify.h"
#include "core/heuristics.h"
#include "io/bench_io.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rd::serve {

// One cache slot: either a build in flight (ready == false) or a
// published entry.  Waiters block on `cv`; the builder publishes
// `entry` or `error` under `m` and notifies.  The slot itself is
// shared_ptr-held by the map and by every waiter, so removing a failed
// slot from the map cannot invalidate anyone mid-wait.
struct CircuitCache::Slot {
  std::mutex m;
  std::condition_variable cv;
  bool ready = false;
  EntryPtr entry;
  std::exception_ptr error;
};

struct CircuitCache::Impl {
  std::mutex mutex;
  // Keyed by the full content string (sort_spec + '\0' + netlist text):
  // the 64-bit content_hash is an identity we report to clients, not
  // the lookup key, so a collision can never alias two circuits.
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots;
  // LRU order over *ready* keys: front = most recently used.
  std::list<std::string> lru;
  std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos;
  CacheStats stats;

  void touch(const std::string& key) {
    auto pos = lru_pos.find(key);
    if (pos != lru_pos.end()) lru.erase(pos->second);
    lru.push_front(key);
    lru_pos[key] = lru.begin();
  }

  // Takes the key by value: the caller passes lru.back(), a reference
  // into the very node the erase below destroys.
  void forget(const std::string key) {
    auto pos = lru_pos.find(key);
    if (pos != lru_pos.end()) {
      lru.erase(pos->second);
      lru_pos.erase(pos);
    }
    slots.erase(key);
  }
};

const StaticClosure* CircuitCache::Entry::shared_closure(
    bool* built_now) const {
  bool ran = false;
  std::call_once(closure_once, [this, &ran] {
    Stopwatch watch;
    closure = std::make_unique<const StaticClosure>(*compiled);
    closure_seconds = watch.elapsed_seconds();
    ran = true;
  });
  if (built_now != nullptr) *built_now = ran;
  return closure.get();
}

CircuitCache::CircuitCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      impl_(std::make_unique<Impl>()) {}

CircuitCache::~CircuitCache() = default;

std::uint64_t CircuitCache::content_hash(std::string_view netlist_text,
                                         std::string_view sort_spec) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix(sort_spec);
  h ^= 0xFFu;  // separator so ("ab","c") and ("a","bc") differ
  h *= 1099511628211ull;
  mix(netlist_text);
  return h;
}

CircuitCache::EntryPtr CircuitCache::build_entry(
    const std::string& netlist_text, const std::string& circuit_name,
    const std::string& sort_spec, const BuildOptions& build,
    const std::function<Circuit()>& generator) {
  auto entry = std::make_shared<Entry>();
  entry->content_key = content_hash(netlist_text, sort_spec);
  entry->sort_spec = sort_spec;
  entry->circuit = generator ? generator()
                             : read_bench_string(netlist_text, circuit_name);

  ClassifyOptions base;
  base.num_threads = build.num_threads;
  base.work_limit = build.work_limit;
  base.guard = build.guard;

  Stopwatch watch;
  Rng rng(1);  // same tie-break stream as identify_rd_heuristic*
  if (sort_spec == "1") {
    entry->sort = heuristic1_sort(entry->circuit, &rng);
  } else if (sort_spec == "2" || sort_spec == "inverse") {
    ClassifyResult fs_run;
    ClassifyResult nr_run;
    InputSort sort =
        heuristic2_sort(entry->circuit, &rng, &fs_run, &nr_run, &base);
    // A sort cut from aborted pre-runs is not Heuristic 2's sort; it
    // must not be cached and served to every later client.  Convert
    // the partial build into this request's typed abort instead.
    if (!fs_run.completed || !nr_run.completed) {
      const AbortReason reason = !fs_run.completed
                                     ? (fs_run.abort_reason == AbortReason::kNone
                                            ? AbortReason::kWorkBudget
                                            : fs_run.abort_reason)
                                     : (nr_run.abort_reason == AbortReason::kNone
                                            ? AbortReason::kWorkBudget
                                            : nr_run.abort_reason);
      throw GuardTrippedError(reason);
    }
    entry->prerun_work = fs_run.work + nr_run.work;
    entry->sort = sort_spec == "2" ? std::move(sort) : sort.reversed();
  } else if (sort_spec == "fus") {
    entry->sort.reset();
  } else {
    throw std::invalid_argument("unknown sort spec '" + sort_spec +
                                "' (expected 1, 2, inverse or fus)");
  }
  entry->sort_seconds = watch.elapsed_seconds();

  // The compile references entry->circuit (and, via the captured
  // pointer, entry->sort); both are heap-pinned by the shared_ptr, so
  // the addresses stay valid for the entry's whole life.
  if (entry->sort.has_value()) {
    const InputSort* sort = &*entry->sort;
    entry->compiled = std::make_unique<const CompiledCircuit>(
        entry->circuit,
        [sort](GateId gate, std::uint32_t a, std::uint32_t b) {
          return sort->before(gate, a, b);
        });
  } else {
    entry->compiled = std::make_unique<const CompiledCircuit>(entry->circuit);
  }
  return entry;
}

CircuitCache::EntryPtr CircuitCache::get(const std::string& netlist_text,
                                         const std::string& circuit_name,
                                         const std::string& sort_spec,
                                         const BuildOptions& build,
                                         bool* was_hit,
                                         const std::function<Circuit()>& generator) {
  std::string key;
  key.reserve(sort_spec.size() + 1 + netlist_text.size());
  key.append(sort_spec);
  key.push_back('\0');
  key.append(netlist_text);

  std::shared_ptr<Slot> slot;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->slots.find(key);
    if (it != impl_->slots.end()) {
      slot = it->second;
    } else {
      slot = std::make_shared<Slot>();
      impl_->slots.emplace(key, slot);
      builder = true;
      ++impl_->stats.misses;
    }
  }

  if (builder) {
    EntryPtr entry;
    std::exception_ptr error;
    try {
      entry = build_entry(netlist_text, circuit_name, sort_spec, build,
                          generator);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> slot_lock(slot->m);
      slot->ready = true;
      slot->entry = entry;
      slot->error = error;
    }
    slot->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      if (error) {
        // Failed builds are not cached: drop the slot so the next
        // request retries with its own budget.
        ++impl_->stats.failures;
        auto it = impl_->slots.find(key);
        if (it != impl_->slots.end() && it->second == slot)
          impl_->slots.erase(it);
      } else {
        impl_->touch(key);
        impl_->stats.entries = impl_->lru.size();
        while (impl_->lru.size() > capacity_) {
          impl_->forget(impl_->lru.back());
          ++impl_->stats.evictions;
        }
        impl_->stats.entries = impl_->lru.size();
      }
    }
    if (error) std::rethrow_exception(error);
    if (was_hit != nullptr) *was_hit = false;
    return entry;
  }

  EntryPtr entry;
  std::exception_ptr error;
  bool waited = false;
  {
    std::unique_lock<std::mutex> slot_lock(slot->m);
    waited = !slot->ready;
    slot->cv.wait(slot_lock, [&slot] { return slot->ready; });
    entry = slot->entry;
    error = slot->error;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (error == nullptr) {
      ++impl_->stats.hits;
      // The key may have been evicted between publish and now; a hit
      // through a still-held slot does not resurrect it.
      if (impl_->lru_pos.count(key) != 0) impl_->touch(key);
    }
    if (waited) ++impl_->stats.waits;
  }
  if (error) std::rethrow_exception(error);
  if (was_hit != nullptr) *was_hit = true;
  return entry;
}

CacheStats CircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace rd::serve
