#include "serve/frame.h"

namespace rd::serve {

std::string encode_frame(const std::string& json_text) {
  const std::uint32_t length = static_cast<std::uint32_t>(json_text.size());
  std::string frame;
  frame.reserve(4 + json_text.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>(length & 0xFF));
  frame += json_text;
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (dead_) return;
  buffer_.append(data, size);
}

FrameDecoder::Status FrameDecoder::next(std::string* payload) {
  if (dead_) return Status::kError;
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return Status::kNeedMore;
  const unsigned char* head =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::size_t length = (static_cast<std::size_t>(head[0]) << 24) |
                             (static_cast<std::size_t>(head[1]) << 16) |
                             (static_cast<std::size_t>(head[2]) << 8) |
                             static_cast<std::size_t>(head[3]);
  if (length > max_frame_bytes_) {
    dead_ = true;
    error_ = "frame of " + std::to_string(length) +
             " bytes exceeds the " + std::to_string(max_frame_bytes_) +
             "-byte ceiling";
    return Status::kError;
  }
  if (available - 4 < length) return Status::kNeedMore;
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return Status::kFrame;
}

}  // namespace rd::serve
