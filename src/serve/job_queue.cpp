#include "serve/job_queue.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rd::serve {

struct JobQueue::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stopping = false;  // no new submissions
  bool draining = true;   // run the backlog before exiting
  Stats stats;
  std::vector<std::thread> workers;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping, nothing left (or discarded)
        if (stopping && !draining) {
          stats.discarded += queue.size();
          queue.clear();
          return;
        }
        job = std::move(queue.front());
        queue.pop_front();
      }
      try {
        job();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.job_exceptions;
      }
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.completed;
    }
  }
};

JobQueue::JobQueue(std::size_t num_workers) : impl_(std::make_unique<Impl>()) {
  if (num_workers == 0) num_workers = 1;
  impl_->stats.workers = num_workers;
  impl_->workers.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

JobQueue::~JobQueue() { stop(/*drain=*/true); }

bool JobQueue::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) {
      ++impl_->stats.rejected;
      return false;
    }
    impl_->queue.push_back(std::move(job));
    ++impl_->stats.submitted;
  }
  impl_->cv.notify_one();
  return true;
}

void JobQueue::stop(bool drain) {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->stopping) {
      impl_->stopping = true;
      impl_->draining = drain;
    } else if (!drain) {
      impl_->draining = false;  // escalate a draining stop to a fast one
    }
    workers.swap(impl_->workers);
  }
  impl_->cv.notify_all();
  for (std::thread& worker : workers)
    if (worker.joinable()) worker.join();
  // With no workers left (second stop() call, or zero-job races), any
  // remaining queued jobs are discarded here.
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->queue.empty()) {
    impl_->stats.discarded += impl_->queue.size();
    impl_->queue.clear();
  }
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Stats snapshot = impl_->stats;
  snapshot.queued = impl_->queue.size();
  return snapshot;
}

}  // namespace rd::serve
