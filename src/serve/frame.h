// Length-prefixed JSON frame codec — the wire format of `rdfast
// serve` (DESIGN.md §12).
//
// One frame is a 4-byte big-endian payload length followed by exactly
// that many bytes of UTF-8 JSON text (one complete document, as
// io/json_writer emits and parses it).  Length-prefixing keeps the
// framing independent of the payload — no sentinel bytes, no
// newline-in-string pitfalls — and lets a reader reject an abusive
// length before buffering a single payload byte.
//
// The decoder is incremental: feed() whatever the socket produced,
// pop complete payloads with next().  A frame larger than the
// configured ceiling is a protocol error that poisons the decoder —
// the stream position after an oversized frame is unknowable, so the
// connection must be dropped, which is exactly what the server does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rd::serve {

/// Default payload ceiling (64 MiB): far above any real netlist +
/// request envelope, far below an allocation that could stall the
/// process.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Wraps already-serialized JSON text in a frame (prefix + payload).
std::string encode_frame(const std::string& json_text);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the transport.  Cheap; no parsing happens
  /// until next().
  void feed(const char* data, std::size_t size);

  enum class Status {
    kFrame,     // *payload holds the next complete frame's JSON text
    kNeedMore,  // no complete frame buffered yet
    kError,     // protocol violation; error() explains, decoder is dead
  };

  /// Extracts the next complete payload.  After kError every further
  /// call returns kError (the stream cannot be resynchronized).
  Status next(std::string* payload);

  const std::string& error() const { return error_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // compacted lazily
  std::string error_;
  bool dead_ = false;
};

}  // namespace rd::serve
