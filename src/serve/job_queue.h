// Persistent worker pool for daemon jobs (DESIGN.md §12).
//
// Why not the shared util/ThreadPool?  That pool is batch-shaped:
// run(tasks) blocks until the whole batch drains and is not reentrant,
// which is the right contract for a classify run's internal fan-out but
// the wrong one for a stream of independent requests arriving at
// unpredictable times.  The JobQueue is the complementary shape — a
// FIFO of opaque closures drained by a fixed set of long-lived
// workers — and a job running on it is free to use the batch pool (or
// classify's parallel path) internally.
//
// Jobs own their error handling: the serve session wraps every request
// so failures become serve_error frames.  A job that still throws is
// swallowed and counted (stats().job_exceptions) rather than taking a
// worker down — one poisoned request must not degrade the pool.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace rd::serve {

class JobQueue {
 public:
  /// Spawns `num_workers` (at least 1) threads immediately.
  explicit JobQueue(std::size_t num_workers);

  /// Equivalent to stop(/*drain=*/true).
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `job` for some worker.  Returns false (job dropped)
  /// after stop() — callers translate that into a "shutting_down"
  /// refusal rather than silently losing the request.
  bool submit(std::function<void()> job);

  /// Stops accepting work and joins the workers.  drain=true runs the
  /// jobs already queued first; drain=false discards them (their count
  /// lands in stats().discarded).  Idempotent.
  void stop(bool drain = true);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;       // includes jobs that threw
    std::uint64_t rejected = 0;        // submit() after stop()
    std::uint64_t discarded = 0;       // queued jobs dropped by stop(false)
    std::uint64_t job_exceptions = 0;  // jobs that escaped via throw
    std::size_t queued = 0;            // waiting right now
    std::size_t workers = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rd::serve
