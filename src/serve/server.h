// `rdfast serve` — the persistent classification daemon (DESIGN.md
// §12).
//
// A Server owns one loopback TCP listener plus the serving machinery
// behind it: a FrameDecoder per connection, a shared CircuitCache, a
// JobQueue of persistent workers, and one Session that executes every
// request.  Each accepted connection gets a reader thread (connections
// are cheap and mostly idle; jobs are the expensive part and those are
// bounded by the queue's worker count).  Responses are written under a
// per-connection mutex, so concurrent jobs of one connection never
// interleave frames; requests carry client-chosen ids precisely so
// out-of-order completion is unambiguous.
//
// Shutdown has two triggers with one path: an {"op": "shutdown"}
// request or the external cancellation token (the CLI's SIGINT
// handler).  Both funnel into request_stop(), which stops the
// listener, cancels in-flight guards (jobs abort cooperatively with
// AbortReason::kCancelled), and wakes wait().  The daemon never
// hard-kills a job — every in-flight request still gets a schema-valid
// (possibly aborted) response before its connection closes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cone_cache.h"
#include "serve/circuit_cache.h"
#include "util/exec_guard.h"

namespace rd::serve {

struct ServerConfig {
  /// Loopback port; 0 binds an ephemeral port (read it back via
  /// port()).
  std::uint16_t port = 0;

  /// JobQueue worker threads (concurrent requests in flight).
  std::size_t num_workers = 1;

  /// CircuitCache capacity in entries.
  std::size_t cache_capacity = 64;

  /// Per-frame payload ceiling.
  std::size_t max_frame_bytes = 0;  // 0 = kDefaultMaxFrameBytes

  /// Directory for cone-cache persistence ({"incremental": true}
  /// classify requests).  Empty keeps the shared store memory-only;
  /// otherwise start() loads it (recovery ladder, never fatal) and a
  /// clean stop saves it atomically.
  std::string cone_cache_dir;

  /// External stop signal (the CLI chains SIGINT through this); also
  /// chained into every request guard.  Not owned; may be null.
  CancellationToken* cancel = nullptr;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept thread.  Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const;

  /// Initiates shutdown: stop accepting, cancel in-flight request
  /// guards, wake wait().  Callable from any thread, including a job.
  void request_stop();

  /// Blocks until the server has fully stopped (listener closed,
  /// readers joined, job queue drained).  Returns true if the stop was
  /// triggered by the external cancellation token rather than a
  /// shutdown request.
  bool wait();

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;      // complete frames received
    std::uint64_t responses = 0;     // frames written back
    std::uint64_t protocol_errors = 0;
  };
  Stats stats() const;

  CircuitCache& cache();

  /// The shared per-cone result store (always present; persisted only
  /// when config.cone_cache_dir is set).
  ConeCacheStore& cone_cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rd::serve
