#include "gen/carry_mesh.h"

#include <stdexcept>
#include <vector>

namespace rd {

Circuit make_carry_mesh(const CarryMeshProfile& profile) {
  if (profile.width < 2)
    throw std::invalid_argument("carry mesh needs width >= 2");
  if (profile.depth < 1)
    throw std::invalid_argument("carry mesh needs depth >= 1");

  Circuit circuit(profile.name);
  std::vector<GateId> row(profile.width);
  for (std::size_t j = 0; j < profile.width; ++j)
    row[j] = circuit.add_input("a" + std::to_string(j));

  // Gate types cycle down the rows so controlling values (0 for
  // AND/NAND, 1 for OR/NOR) and inversion parities both alternate.
  constexpr GateType kRowTypes[] = {GateType::kAnd, GateType::kOr,
                                    GateType::kNand, GateType::kNor};
  std::vector<GateId> next(profile.width);
  for (std::size_t r = 1; r <= profile.depth; ++r) {
    const GateType type = kRowTypes[(r - 1) % 4];
    for (std::size_t j = 0; j < profile.width; ++j) {
      const std::string name =
          "t" + std::to_string(r) + "_" + std::to_string(j);
      next[j] = circuit.add_gate(
          type, name, {row[j], row[(j + 1) % profile.width]});
    }
    row = next;
  }
  for (std::size_t j = 0; j < profile.width; ++j)
    circuit.add_output("out" + std::to_string(j), row[j]);
  circuit.finalize();
  return circuit;
}

}  // namespace rd
