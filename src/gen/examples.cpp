#include "gen/examples.h"

namespace rd {

Circuit paper_example_circuit() {
  // y = a + (bc + c).  Reconstructed from the paper's figures: under
  // v = 111 there are exactly three stabilizing systems (Fig. 1); the
  // assignment of Example 2 keeps 6 of the 8 logical paths, one of
  // which (b falling, the dashed line of Fig. 2) is functionally
  // sensitizable but neither robustly nor non-robustly testable; the
  // optimum assignment (Figs. 4-5) keeps the 5 robustly testable
  // paths.  All of these counts are asserted in the test suite.
  Circuit circuit("paper_example");
  const GateId a = circuit.add_input("a");
  const GateId b = circuit.add_input("b");
  const GateId c = circuit.add_input("c");
  const GateId g1 = circuit.add_gate(GateType::kAnd, "g1", {b, c});
  const GateId h = circuit.add_gate(GateType::kOr, "h", {g1, c});
  const GateId y = circuit.add_gate(GateType::kOr, "y", {a, h});
  circuit.add_output("y", y);
  circuit.finalize();
  return circuit;
}

Circuit c17() {
  Circuit circuit("c17");
  const GateId g1 = circuit.add_input("1");
  const GateId g2 = circuit.add_input("2");
  const GateId g3 = circuit.add_input("3");
  const GateId g6 = circuit.add_input("6");
  const GateId g7 = circuit.add_input("7");
  const GateId g10 = circuit.add_gate(GateType::kNand, "10", {g1, g3});
  const GateId g11 = circuit.add_gate(GateType::kNand, "11", {g3, g6});
  const GateId g16 = circuit.add_gate(GateType::kNand, "16", {g2, g11});
  const GateId g19 = circuit.add_gate(GateType::kNand, "19", {g11, g7});
  const GateId g22 = circuit.add_gate(GateType::kNand, "22", {g10, g16});
  const GateId g23 = circuit.add_gate(GateType::kNand, "23", {g16, g19});
  circuit.add_output("22", g22);
  circuit.add_output("23", g23);
  circuit.finalize();
  return circuit;
}

Circuit unsat_side_constraint_circuit() {
  // The rising-m path z1..z5 asserts s1..s4 = 1 (non-controlling tips
  // at the AND gates) — jointly unsatisfiable, pairwise silent under
  // ternary propagation.  The z4->z5 lead has a controlling tip under
  // FS, so its side input c stays unknown and is the probe target.
  Circuit circuit("unsat_side");
  const GateId m = circuit.add_input("m");
  const GateId c = circuit.add_input("c");
  const GateId d = circuit.add_input("d");
  const GateId nc = circuit.add_gate(GateType::kNot, "nc", {c});
  const GateId nd = circuit.add_gate(GateType::kNot, "nd", {d});
  const GateId s1 = circuit.add_gate(GateType::kOr, "s1", {c, d});
  const GateId s2 = circuit.add_gate(GateType::kOr, "s2", {nc, d});
  const GateId s3 = circuit.add_gate(GateType::kOr, "s3", {c, nd});
  const GateId s4 = circuit.add_gate(GateType::kOr, "s4", {nc, nd});
  const GateId z1 = circuit.add_gate(GateType::kAnd, "z1", {m, s1});
  const GateId z2 = circuit.add_gate(GateType::kAnd, "z2", {z1, s2});
  const GateId z3 = circuit.add_gate(GateType::kAnd, "z3", {z2, s3});
  const GateId z4 = circuit.add_gate(GateType::kAnd, "z4", {z3, s4});
  const GateId z5 = circuit.add_gate(GateType::kOr, "z5", {z4, c});
  circuit.add_output("z5", z5);
  circuit.finalize();
  return circuit;
}

}  // namespace rd
