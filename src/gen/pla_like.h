// Synthetic MCNC-like two-level benchmarks.
//
// Table III of the paper runs on multi-level circuits synthesized from
// the MCNC two-level benchmark set; those PLAs are substituted here by
// seeded random covers whose interface sizes and product-term counts
// are chosen so that, after synthesis (src/synth), circuit and path
// counts land in the paper's Table III range.  Literal selection is
// skewed toward low-index variables so the covers have genuine shared
// structure for the extraction phase to find — flat random covers
// would factor poorly and look nothing like real MCNC designs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/pla_io.h"

namespace rd {

struct PlaProfile {
  std::string name;
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 4;
  std::size_t num_cubes = 32;
  std::size_t min_literals = 2;
  std::size_t max_literals = 6;
  double output_density = 0.3;  // probability a cube is on per output
  std::uint64_t seed = 1;
};

/// Generates a random two-level cover for the profile.  Every output is
/// guaranteed a non-empty cover and every cube at least one literal and
/// one output.
Pla make_pla_like(const PlaProfile& profile);

/// The eight Table III stand-in profiles (apex1, Z5xp1, apex5, bw,
/// apex3, misex3, seq, misex3c).
std::vector<PlaProfile> mcnc_profiles();

}  // namespace rd
