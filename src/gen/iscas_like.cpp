#include "gen/iscas_like.h"

#include <algorithm>
#include <stdexcept>

#include "util/biguint.h"
#include "util/rng.h"

namespace rd {

namespace {

/// Planned netlist node; indices are construction order (topological).
struct PlanNode {
  GateType type;
  std::vector<std::uint32_t> fanins;
};

struct Plan {
  std::size_t num_inputs = 0;
  std::vector<PlanNode> nodes;  // first num_inputs entries are PIs
  std::vector<std::uint32_t> po_drivers;

  std::uint32_t add(GateType type, std::vector<std::uint32_t> fanins) {
    nodes.push_back(PlanNode{type, std::move(fanins)});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }

  /// Topological order over the plan (creation order is *not*
  /// necessarily topological once phase 3 splices nodes in).
  std::vector<std::uint32_t> topo_order() const {
    std::vector<std::uint32_t> pending(nodes.size(), 0);
    std::vector<std::vector<std::uint32_t>> fanouts(nodes.size());
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      pending[i] = static_cast<std::uint32_t>(nodes[i].fanins.size());
      for (std::uint32_t fanin : nodes[i].fanins) fanouts[fanin].push_back(i);
    }
    std::vector<std::uint32_t> order;
    order.reserve(nodes.size());
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < nodes.size(); ++i)
      if (pending[i] == 0) ready.push_back(i);
    while (!ready.empty()) {
      const std::uint32_t id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (std::uint32_t sink : fanouts[id])
        if (--pending[sink] == 0) ready.push_back(sink);
    }
    return order;
  }
};

Circuit build_from_plan(const Plan& plan, const std::string& name) {
  Circuit circuit(name);
  std::vector<GateId> map(plan.nodes.size());
  // PIs first, in plan order, so the circuit's input indexing matches
  // the plan's regardless of how phase 3 reshaped the topology.
  for (std::uint32_t i = 0; i < plan.nodes.size(); ++i)
    if (plan.nodes[i].type == GateType::kInput)
      map[i] = circuit.add_input("i" + std::to_string(i));
  for (std::uint32_t i : plan.topo_order()) {
    const PlanNode& node = plan.nodes[i];
    if (node.type == GateType::kInput) continue;
    std::vector<GateId> fanins;
    fanins.reserve(node.fanins.size());
    for (std::uint32_t fanin : node.fanins) fanins.push_back(map[fanin]);
    map[i] = circuit.add_gate(node.type, "g" + std::to_string(i),
                              std::move(fanins));
  }
  std::size_t po_counter = 0;
  for (std::uint32_t driver : plan.po_drivers)
    circuit.add_output("po" + std::to_string(po_counter++), map[driver]);
  circuit.finalize();
  return circuit;
}

/// c6288-style four-NAND XOR macro; the internal fanout of x, y and t
/// is the reconvergence that makes multiplier path counts explode.
std::uint32_t add_xor_macro(Plan& plan, std::uint32_t x, std::uint32_t y) {
  const std::uint32_t t = plan.add(GateType::kNand, {x, y});
  const std::uint32_t u = plan.add(GateType::kNand, {x, t});
  const std::uint32_t v = plan.add(GateType::kNand, {y, t});
  return plan.add(GateType::kNand, {u, v});
}

/// Structural path counting on a plan: arrivals per node and the total
/// over the chosen PO drivers.
struct PlanCounts {
  std::vector<BigUint> arrivals;
  std::vector<BigUint> departures;
  BigUint total_physical;
};

PlanCounts count_plan_paths(const Plan& plan) {
  PlanCounts counts;
  const std::size_t n = plan.nodes.size();
  const auto order = plan.topo_order();
  counts.arrivals.assign(n, BigUint());
  counts.departures.assign(n, BigUint());
  for (std::uint32_t i : order) {
    const PlanNode& node = plan.nodes[i];
    if (node.type == GateType::kInput) {
      counts.arrivals[i] = BigUint(1);
      continue;
    }
    BigUint sum;
    for (std::uint32_t fanin : node.fanins) sum += counts.arrivals[fanin];
    counts.arrivals[i] = std::move(sum);
  }
  std::vector<std::uint32_t> po_multiplicity(n, 0);
  for (std::uint32_t driver : plan.po_drivers) ++po_multiplicity[driver];
  for (std::uint32_t i = 0; i < n; ++i)
    counts.departures[i] = BigUint(po_multiplicity[i]);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const PlanNode& node = plan.nodes[*it];
    for (std::uint32_t fanin : node.fanins)
      counts.departures[fanin] += counts.departures[*it];
  }
  for (std::uint32_t driver : plan.po_drivers)
    counts.total_physical += counts.arrivals[driver];
  return counts;
}

}  // namespace

Circuit make_iscas_like(const IscasProfile& profile) {
  if (profile.num_levels < 2 || profile.num_inputs < 2)
    throw std::invalid_argument("make_iscas_like: degenerate profile");
  Rng rng(profile.seed);
  Plan plan;
  plan.num_inputs = profile.num_inputs;
  for (std::size_t i = 0; i < profile.num_inputs; ++i)
    plan.add(GateType::kInput, {});

  // ---- Phase 1: one tree per output cone -----------------------------
  // Each PO is the root of a tree grown root-first (gate fanins are
  // either later tree gates or PI leaves), so the backbone's path count
  // stays linear in the gate count — like real netlists, where most
  // fanout feeds *different* output cones.  Reconvergence, the property
  // that actually multiplies path counts, is added in a measured way in
  // phase 3.  XOR macros (internally reconvergent) give the ECC- and
  // multiplier-class profiles their flavor.
  const std::size_t gates_per_cone =
      std::max<std::size_t>(1, profile.num_gates / profile.num_outputs);
  const double chain_bias =
      std::min(0.9, static_cast<double>(profile.num_levels) /
                        static_cast<double>(gates_per_cone + 1));

  struct LocalNode {
    GateType type;                  // kBuf marks an XOR macro placeholder
    bool is_xor = false;
    std::vector<std::int64_t> children;  // local index, or -1 while open
  };

  std::vector<bool> pi_used(profile.num_inputs, false);
  // Leaves draw PIs from a shuffled deck so a cone reuses an input only
  // once the whole deck is exhausted — real cones connect to mostly
  // distinct inputs, and gratuitous sibling-leaf sharing would create
  // reconvergence that kills sensitizability.
  std::vector<std::uint32_t> pi_deck;
  auto deal_pi = [&]() {
    if (pi_deck.empty()) {
      pi_deck.resize(profile.num_inputs);
      for (std::uint32_t i = 0; i < profile.num_inputs; ++i) pi_deck[i] = i;
      for (std::size_t i = pi_deck.size(); i > 1; --i)
        std::swap(pi_deck[i - 1], pi_deck[rng.next_below(i)]);
    }
    const std::uint32_t pi = pi_deck.back();
    pi_deck.pop_back();
    pi_used[pi] = true;
    return pi;
  };
  for (std::size_t cone = 0; cone < profile.num_outputs; ++cone) {
    std::vector<LocalNode> local;
    std::vector<std::pair<std::size_t, std::size_t>> open_slots;
    static constexpr GateType kTypes[] = {GateType::kAnd, GateType::kOr,
                                          GateType::kNand, GateType::kNor};
    auto new_node = [&]() {
      const double roll = rng.next_double();
      LocalNode node;
      if (roll < profile.xor_fraction) {
        node.is_xor = true;
        node.type = GateType::kNand;
        node.children.assign(2, -1);
      } else if (roll < profile.xor_fraction + profile.not_fraction) {
        node.type = GateType::kNot;
        node.children.assign(1, -1);
      } else {
        node.type = kTypes[rng.next_below(4)];
        node.children.assign(rng.next_bool(0.62) ? 2 : 3, -1);
      }
      local.push_back(std::move(node));
      const std::size_t index = local.size() - 1;
      for (std::size_t slot = 0; slot < local[index].children.size(); ++slot)
        open_slots.emplace_back(index, slot);
      return index;
    };

    std::size_t gate_budget = gates_per_cone;
    new_node();  // root
    while (gate_budget > 0 && !open_slots.empty()) {
      // Chain bias: preferring the newest slot stretches the tree to
      // the profile's depth; otherwise pick a random open slot.
      const std::size_t pick =
          rng.next_bool(chain_bias)
              ? open_slots.size() - 1
              : static_cast<std::size_t>(rng.next_below(open_slots.size()));
      const auto [node, slot] = open_slots[pick];
      open_slots.erase(open_slots.begin() + static_cast<std::ptrdiff_t>(pick));
      const std::size_t child = new_node();
      local[node].children[slot] = static_cast<std::int64_t>(child);
      const std::size_t cost = local[child].is_xor ? 4 : 1;
      gate_budget -= std::min(gate_budget, cost);
    }

    // Emit in reverse creation order (children first), filling the
    // remaining open slots with PIs.
    std::vector<std::uint32_t> plan_id(local.size());
    for (std::size_t i = local.size(); i-- > 0;) {
      std::vector<std::uint32_t> fanins;
      for (std::int64_t child : local[i].children) {
        if (child >= 0) {
          fanins.push_back(plan_id[static_cast<std::size_t>(child)]);
        } else {
          fanins.push_back(deal_pi());
        }
      }
      if (local[i].is_xor) {
        // Distinct macro inputs keep the circuit well-formed.
        if (fanins[0] == fanins[1])
          fanins[1] = static_cast<std::uint32_t>(
              (fanins[1] + 1) % profile.num_inputs);
        plan_id[i] = add_xor_macro(plan, fanins[0], fanins[1]);
      } else {
        // Deduplicate repeated PI picks in one gate.
        std::sort(fanins.begin(), fanins.end());
        fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
        plan_id[i] = plan.add(local[i].type, std::move(fanins));
      }
    }
    plan.po_drivers.push_back(plan_id[0]);
  }

  // ---- Phase 2: make sure every PI is used ---------------------------
  for (std::uint32_t pi = 0; pi < profile.num_inputs; ++pi) {
    if (pi_used[pi]) continue;
    for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
      const std::uint32_t target = static_cast<std::uint32_t>(
          profile.num_inputs +
          rng.next_below(plan.nodes.size() - profile.num_inputs));
      PlanNode& node = plan.nodes[target];
      if (!has_controlling_value(node.type) || node.fanins.size() >= 9)
        continue;
      if (std::find(node.fanins.begin(), node.fanins.end(), pi) !=
          node.fanins.end())
        continue;
      node.fanins.push_back(pi);
      break;
    }
  }

  // ---- Phase 3: path-count-targeted reconvergence -------------------
  // Add cross edges (extra fanins) until the structural path count
  // reaches the profile's target, choosing each edge so the jump stays
  // within the remaining gap.  This reproduces the enormous spread of
  // path counts across the ISCAS-85 suite with matched gate counts.
  if (profile.target_logical_paths > 0) {
    const BigUint target(profile.target_logical_paths);
    const std::size_t max_edges = 4 * plan.nodes.size();
    // Two growth mechanisms, applied largest-fitting-jump first:
    //  * XOR splices — an existing fanin f of a gate is replaced by
    //    XOR(f, src), multiplying the paths through that pin.  XOR is
    //    the transparent mixing element of real high-path-count
    //    circuits (parity trees, multipliers): both macro inputs stay
    //    functionally sensitizable, so the giant jumps do not flood
    //    the circuit with robust-dependent paths.
    //  * plain extra fanins — cheap small jumps for the final approach
    //    to the target.
    std::size_t splice_budget = std::max<std::size_t>(4, profile.num_gates / 20);
    for (std::size_t edge = 0; edge < max_edges; ++edge) {
      const PlanCounts counts = count_plan_paths(plan);
      BigUint total = counts.total_physical;
      total *= 2u;  // logical
      if (total >= target) break;
      const BigUint gap = target - total;

      const auto order = plan.topo_order();
      std::vector<std::uint32_t> rank(plan.nodes.size());
      for (std::uint32_t position = 0; position < order.size(); ++position)
        rank[order[position]] = position;

      struct Candidate {
        bool splice = false;
        std::uint32_t dst = 0;
        std::uint32_t pin = 0;  // splice only
        std::uint32_t src = 0;
        BigUint delta;
      };
      Candidate best;
      bool have_best = false;
      Candidate fallback;
      bool have_fallback = false;

      auto consider = [&](Candidate candidate) {
        if (candidate.delta.is_zero()) return;
        if (candidate.delta <= gap) {
          if (!have_best || best.delta < candidate.delta ||
              (best.delta == candidate.delta && candidate.splice &&
               !best.splice)) {
            best = std::move(candidate);
            have_best = true;
          }
        } else if (!have_fallback || candidate.delta < fallback.delta) {
          fallback = std::move(candidate);
          have_fallback = true;
        }
      };

      for (int attempt = 0; attempt < 96; ++attempt) {
        const std::uint32_t dst = static_cast<std::uint32_t>(
            profile.num_inputs +
            rng.next_below(plan.nodes.size() - profile.num_inputs));
        PlanNode& node = plan.nodes[dst];
        if (!has_controlling_value(node.type)) continue;
        const std::uint32_t src = order[rng.next_below(rank[dst])];
        if (std::find(node.fanins.begin(), node.fanins.end(), src) !=
            node.fanins.end())
          continue;

        if (attempt % 2 == 0 && splice_budget > 0) {
          // XOR splice on a random pin.
          const std::uint32_t pin = static_cast<std::uint32_t>(
              rng.next_below(node.fanins.size()));
          const std::uint32_t f = node.fanins[pin];
          if (f == src) continue;
          Candidate candidate;
          candidate.splice = true;
          candidate.dst = dst;
          candidate.pin = pin;
          candidate.src = src;
          // arrivals through the macro: 3*(arr_f + arr_src) replaces
          // arr_f on this pin.
          BigUint delta = counts.arrivals[f];
          delta *= 2u;
          BigUint src_part = counts.arrivals[src];
          src_part *= 3u;
          delta += src_part;
          delta *= counts.departures[dst];
          delta *= 2u;  // logical
          candidate.delta = std::move(delta);
          consider(std::move(candidate));
        } else {
          if (node.fanins.size() >= 9) continue;
          Candidate candidate;
          candidate.dst = dst;
          candidate.src = src;
          BigUint delta = counts.arrivals[src] * counts.departures[dst];
          delta *= 2u;
          candidate.delta = std::move(delta);
          consider(std::move(candidate));
        }
      }

      const Candidate* chosen = nullptr;
      if (have_best) {
        chosen = &best;
      } else if (have_fallback) {
        // Accept a mild overshoot only if we are still far away.
        BigUint doubled = total;
        doubled *= 2u;
        if (doubled < target) chosen = &fallback;
      }
      if (chosen == nullptr) break;
      if (chosen->splice) {
        const std::uint32_t f = plan.nodes[chosen->dst].fanins[chosen->pin];
        const std::uint32_t x = add_xor_macro(plan, f, chosen->src);
        plan.nodes[chosen->dst].fanins[chosen->pin] = x;
        --splice_budget;
      } else {
        plan.nodes[chosen->dst].fanins.push_back(chosen->src);
      }
    }
  }

  return build_from_plan(plan, profile.name);
}

std::vector<IscasProfile> iscas85_profiles() {
  // Interface/gate counts follow the published ISCAS-85 statistics; the
  // path targets are the exact logical path counts of Table II of the
  // paper, which the generator approaches from below.
  std::vector<IscasProfile> profiles = {
      {"c432", 36, 7, 160, 17, 0.10, 0.10, 432, 583'652},
      {"c499", 41, 32, 202, 11, 0.30, 0.04, 499, 795'776},
      {"c880", 60, 26, 383, 24, 0.00, 0.08, 880, 17'284},
      {"c1355", 41, 32, 546, 24, 0.20, 0.04, 1355, 8'346'432},
      {"c1908", 33, 25, 880, 40, 0.05, 0.10, 1908, 1'458'114},
      {"c2670", 233, 140, 1193, 32, 0.03, 0.10, 2670, 1'359'920},
      {"c3540", 50, 22, 1669, 47, 0.06, 0.10, 3540, 57'353'342},
      {"c5315", 178, 123, 2307, 49, 0.03, 0.10, 5315, 2'682'610},
      {"c6288", 32, 32, 2406, 120, 1.0, 0.0, 6288, 0},
      {"c7552", 207, 108, 3512, 43, 0.03, 0.10, 7552, 1'452'988},
  };
  return profiles;
}

Circuit make_array_multiplier(std::size_t n) {
  if (n < 2 || n > 32)
    throw std::invalid_argument("make_array_multiplier: n out of range");
  Plan plan;
  plan.num_inputs = 2 * n;
  std::vector<std::uint32_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = plan.add(GateType::kInput, {});
  for (std::size_t i = 0; i < n; ++i) b[i] = plan.add(GateType::kInput, {});

  // Column-wise carry-save reduction of the n^2 partial products.
  std::vector<std::vector<std::uint32_t>> columns(2 * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      columns[i + j].push_back(plan.add(GateType::kAnd, {a[i], b[j]}));

  auto half_adder = [&](std::uint32_t x, std::uint32_t y,
                        std::uint32_t& carry) {
    carry = plan.add(GateType::kAnd, {x, y});
    return add_xor_macro(plan, x, y);
  };
  auto full_adder = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z,
                        std::uint32_t& carry) {
    const std::uint32_t s1 = add_xor_macro(plan, x, y);
    const std::uint32_t sum = add_xor_macro(plan, s1, z);
    const std::uint32_t c1 = plan.add(GateType::kAnd, {x, y});
    const std::uint32_t c2 = plan.add(GateType::kAnd, {s1, z});
    carry = plan.add(GateType::kOr, {c1, c2});
    return sum;
  };

  for (std::size_t col = 0; col < columns.size(); ++col) {
    auto& bits = columns[col];
    std::size_t cursor = 0;
    while (bits.size() - cursor > 1) {
      std::uint32_t carry;
      std::uint32_t sum;
      if (bits.size() - cursor >= 3) {
        sum = full_adder(bits[cursor], bits[cursor + 1], bits[cursor + 2],
                         carry);
        cursor += 3;
      } else {
        sum = half_adder(bits[cursor], bits[cursor + 1], carry);
        cursor += 2;
      }
      bits.push_back(sum);
      if (col + 1 < columns.size()) columns[col + 1].push_back(carry);
    }
    const std::uint32_t final_bit = bits.back();
    bits.clear();
    bits.push_back(final_bit);
  }

  for (std::size_t col = 0; col < columns.size(); ++col)
    plan.po_drivers.push_back(columns[col].front());
  return build_from_plan(plan, "c6288");
}

Circuit make_benchmark(const std::string& name) {
  if (name == "c6288") return make_array_multiplier(16);
  for (const IscasProfile& profile : iscas85_profiles())
    if (profile.name == name) return make_iscas_like(profile);
  throw std::invalid_argument("unknown benchmark profile: " + name);
}

}  // namespace rd
