// Synthetic ISCAS-85-like benchmark circuits.
//
// The paper evaluates on the ISCAS-85 netlists, which are not shipped
// here; this generator is the documented substitution (see DESIGN.md):
// seeded, layered random DAGs matched to each benchmark's published
// interface and gate-count scale, with XOR-macro density and depth
// knobs that reproduce the enormous spread of path counts across the
// suite (tens of thousands for c880-class circuits up to tens of
// millions for c3540-class, and > 10^19 for the c6288 multiplier,
// which is generated as a genuine 16x16 carry-save array multiplier).
//
// Everything is deterministic in the profile's seed, so benchmark
// tables are reproducible run to run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace rd {

/// Shape parameters for one synthetic benchmark.
struct IscasProfile {
  std::string name;
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 4;
  std::size_t num_gates = 64;   // logic gates (approximate target)
  std::size_t num_levels = 10;  // target logic depth
  double xor_fraction = 0.0;    // share of gate slots built as XOR macros
  double not_fraction = 0.08;   // share of single-input inverter slots
  std::uint64_t seed = 1;

  /// Target total logical path count (0 = no targeting).  The
  /// generator starts from a near-forest backbone and adds reconvergent
  /// cross edges until the structural count approaches this value —
  /// how the stand-ins reproduce Table II's path-count spread.
  std::uint64_t target_logical_paths = 0;
};

/// Generates a finalized circuit for the profile.
Circuit make_iscas_like(const IscasProfile& profile);

/// The ten ISCAS-85 stand-in profiles (c432 .. c7552), with interface
/// counts matching the published benchmarks and structure knobs tuned
/// so path-count magnitudes line up with Table II of the paper.
/// c6288's entry is handled by make_array_multiplier instead (its
/// profile carries the published interface for reporting).
std::vector<IscasProfile> iscas85_profiles();

/// A genuine n x n carry-save array multiplier (AND/OR/NOT XOR macros),
/// the structural stand-in for c6288.  n = 16 yields path counts
/// > 10^19 like the original.
Circuit make_array_multiplier(std::size_t n);

/// Dispatch helper: generates the stand-in circuit for a profile name
/// from iscas85_profiles() ("c6288" routes to make_array_multiplier).
Circuit make_benchmark(const std::string& name);

}  // namespace rd
