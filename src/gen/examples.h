// Built-in example circuits.
//
// * paper_example_circuit(): a reconstruction of the three-input
//   example used throughout the paper (Figures 1, 2, 4, 5, taken there
//   from Lam et al. [1]): four physical / eight logical paths, several
//   stabilizing systems for v = 111, an optimal complete stabilizing
//   assignment with |LP(σ')| = 5 whose five paths are exactly the
//   robustly testable ones.  The structure y = AND(OR(a,b), OR(b,c))
//   reproduces all of those counts (validated in the test suite).
// * c17(): the genuine ISCAS-85 c17 netlist (six NAND gates) — the one
//   benchmark small enough to embed verbatim.
#pragma once

#include "netlist/circuit.h"

namespace rd {

/// The paper's running example: 3 PIs a,b,c; y = (a+b)(b+c).
Circuit paper_example_circuit();

/// ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND gates (exact netlist).
Circuit c17();

/// A circuit whose FS^sup over-keeps provably: the side constraints of
/// the m-to-PO path encode the unsatisfiable CNF
/// (c+d)(c'+d)(c+d')(c'+d') through four OR side inputs, yet the
/// ternary drain never sees a conflict (no single literal is forced).
/// One further lead exposes c itself as an unconstrained side input,
/// so failed-literal probing (--implications=learned) case-splits on
/// c, refutes both polarities, and drops the path — the exact FS
/// engine agrees it is robust dependent.
Circuit unsat_side_constraint_circuit();

}  // namespace rd
