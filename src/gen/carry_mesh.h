// Deep-path synthetic generator: a multiplier-like carry-chain mesh.
//
// The path-exponential regime the paper's c6288 rows exercise — path
// count doubling with every logic level — comes from carry-save
// structure: each cell consumes its own column's previous result *and*
// a neighbor's, so every level multiplies the number of distinct
// PI-to-PO routes by the fanin count.  This generator distills that
// shape into its minimal parameterized form: a width × depth torus
// mesh where cell (r, j) combines cells (r-1, j) and (r-1, j+1 mod
// width), with gate types cycling AND/OR/NAND/NOR down the rows so
// both controlling values and inversion parities alternate (the
// classification criteria see every case).
//
// Closed-form structural counts, asserted by tests/path_tree_test.cpp
// against PathCounts and enumerate_paths:
//
//   physical paths  = width * 2^depth      (each PI reaches each level
//                                           through 2^r routes)
//   logical paths   = 2 * width * 2^depth
//   path length     = depth + 1 leads (the last one into the PO)
//
// The prefix tree, by contrast, has only Θ(width · 2^depth) *edges*
// total but every flat enumeration re-walks Θ(depth) leads per path —
// the sharing factor the path_tree bench row measures.
#pragma once

#include <cstddef>
#include <string>

#include "netlist/circuit.h"

namespace rd {

/// Shape parameters of one carry-chain mesh.
struct CarryMeshProfile {
  std::string name = "carry-mesh";
  std::size_t width = 4;   // columns (also PI and PO count); >= 2
  std::size_t depth = 8;   // logic levels; >= 1
};

/// Generates the finalized mesh.  Deterministic (no seed): structure
/// is fully specified by width and depth.
Circuit make_carry_mesh(const CarryMeshProfile& profile);

}  // namespace rd
