#include "gen/pla_like.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace rd {

Pla make_pla_like(const PlaProfile& profile) {
  if (profile.num_inputs < profile.max_literals)
    throw std::invalid_argument("make_pla_like: max_literals > inputs");
  if (profile.min_literals < 1 || profile.min_literals > profile.max_literals)
    throw std::invalid_argument("make_pla_like: bad literal range");
  Rng rng(profile.seed);
  Pla pla;
  pla.name = profile.name;
  pla.num_inputs = profile.num_inputs;
  pla.num_outputs = profile.num_outputs;
  for (std::size_t i = 0; i < profile.num_inputs; ++i)
    pla.input_labels.push_back("x" + std::to_string(i));
  for (std::size_t i = 0; i < profile.num_outputs; ++i)
    pla.output_labels.push_back("y" + std::to_string(i));

  auto skewed_var = [&]() {
    // Geometric-ish skew: low-index variables recur across cubes,
    // giving the extraction phase real common subexpressions.
    std::size_t var = 0;
    while (var + 1 < profile.num_inputs && rng.next_bool(0.72))
      var = (var + 1 + rng.next_below(3)) % profile.num_inputs;
    return var;
  };

  for (std::size_t c = 0; c < profile.num_cubes; ++c) {
    Cube cube;
    cube.inputs.assign(profile.num_inputs, CubeLit::kDontCare);
    const std::size_t literal_count = static_cast<std::size_t>(
        rng.next_in(profile.min_literals, profile.max_literals));
    std::size_t placed = 0;
    while (placed < literal_count) {
      const std::size_t var = skewed_var();
      if (cube.inputs[var] != CubeLit::kDontCare) continue;
      cube.inputs[var] =
          rng.next_bool(0.5) ? CubeLit::kPositive : CubeLit::kNegative;
      ++placed;
    }
    cube.outputs.assign(profile.num_outputs, false);
    bool any = false;
    for (std::size_t out = 0; out < profile.num_outputs; ++out) {
      cube.outputs[out] = rng.next_bool(profile.output_density);
      any = any || cube.outputs[out];
    }
    if (!any) cube.outputs[rng.next_below(profile.num_outputs)] = true;
    pla.cubes.push_back(std::move(cube));
  }

  // Guarantee a non-empty cover per output.
  for (std::size_t out = 0; out < profile.num_outputs; ++out) {
    const bool covered = std::any_of(
        pla.cubes.begin(), pla.cubes.end(),
        [out](const Cube& cube) { return cube.outputs[out]; });
    if (!covered)
      pla.cubes[rng.next_below(pla.cubes.size())].outputs[out] = true;
  }
  return pla;
}

std::vector<PlaProfile> mcnc_profiles() {
  // Interface sizes follow the real MCNC benchmarks; cube counts and
  // literal ranges are tuned so the synthesized circuits' logical path
  // counts land in Table III's range (1e4 .. 1e6, see EXPERIMENTS.md).
  return {
      {"apex1", 45, 45, 260, 4, 8, 0.16, 101},
      {"Z5xp1", 7, 10, 220, 3, 7, 0.60, 102},
      {"apex5", 114, 88, 320, 4, 9, 0.12, 103},
      {"bw", 5, 28, 120, 2, 5, 0.75, 104},
      {"apex3", 54, 50, 380, 4, 8, 0.18, 105},
      {"misex3", 14, 14, 420, 4, 9, 0.35, 106},
      {"seq", 41, 35, 480, 4, 9, 0.22, 107},
      {"misex3c", 14, 14, 900, 4, 9, 0.55, 108},
  };
}

}  // namespace rd
