// Synthetic sequential (scan) benchmarks: an ISCAS-85-like
// combinational core whose trailing PI/PO pairs are designated as
// flip-flop state ports — the structural shape of the ISCAS-89 scan
// benchmarks after scan insertion.
#pragma once

#include <cstddef>

#include "gen/iscas_like.h"
#include "netlist/sequential.h"

namespace rd {

/// Generates a sequential circuit with `num_flip_flops` state bits on
/// top of the combinational profile (which must have at least that
/// many PIs and POs).  The FF pairing is deterministic: the last
/// `num_flip_flops` PIs pair, in order, with the last POs.
SequentialCircuit make_seq_like(const IscasProfile& profile,
                                std::size_t num_flip_flops);

/// A hand-written 3-bit synchronous counter with carry-out — a known
/// FSM used by tests to pin functional-mode semantics.
SequentialCircuit make_counter3();

}  // namespace rd
