#include "gen/seq_like.h"

#include <stdexcept>

namespace rd {

SequentialCircuit make_seq_like(const IscasProfile& profile,
                                std::size_t num_flip_flops) {
  if (num_flip_flops > profile.num_inputs ||
      num_flip_flops > profile.num_outputs)
    throw std::invalid_argument("make_seq_like: more FFs than ports");
  Circuit core = make_iscas_like(profile);
  std::vector<FlipFlop> flip_flops;
  for (std::size_t i = 0; i < num_flip_flops; ++i) {
    FlipFlop ff;
    ff.name = "ff" + std::to_string(i);
    ff.state_output =
        core.inputs()[core.inputs().size() - num_flip_flops + i];
    ff.state_input =
        core.outputs()[core.outputs().size() - num_flip_flops + i];
    flip_flops.push_back(std::move(ff));
  }
  return SequentialCircuit(std::move(core), std::move(flip_flops));
}

SequentialCircuit make_counter3() {
  // State bits q0..q2, enable input `en`, carry-out `cout`.
  //   q0' = q0 XOR en
  //   q1' = q1 XOR (en AND q0)
  //   q2' = q2 XOR (en AND q0 AND q1)
  //   cout = en AND q0 AND q1 AND q2
  Circuit core("counter3");
  const GateId en = core.add_input("en");
  const GateId q0 = core.add_input("q0");
  const GateId q1 = core.add_input("q1");
  const GateId q2 = core.add_input("q2");

  auto make_xor = [&](const std::string& name, GateId x, GateId y) {
    const GateId nx = core.add_gate(GateType::kNot, name + "_nx", {x});
    const GateId ny = core.add_gate(GateType::kNot, name + "_ny", {y});
    const GateId t1 = core.add_gate(GateType::kAnd, name + "_t1", {x, ny});
    const GateId t2 = core.add_gate(GateType::kAnd, name + "_t2", {nx, y});
    return core.add_gate(GateType::kOr, name, {t1, t2});
  };

  const GateId c0 = core.add_gate(GateType::kAnd, "c0", {en, q0});
  const GateId c1 = core.add_gate(GateType::kAnd, "c1", {c0, q1});
  const GateId cout = core.add_gate(GateType::kAnd, "cout", {c1, q2});

  const GateId d0 = make_xor("d0", q0, en);
  const GateId d1 = make_xor("d1", q1, c0);
  const GateId d2 = make_xor("d2", q2, c1);

  const GateId po_cout = core.add_output("cout", cout);
  const GateId po_d0 = core.add_output("d0", d0);
  const GateId po_d1 = core.add_output("d1", d1);
  const GateId po_d2 = core.add_output("d2", d2);
  core.finalize();

  std::vector<FlipFlop> flip_flops;
  flip_flops.push_back(FlipFlop{"ff0", po_d0, q0});
  flip_flops.push_back(FlipFlop{"ff1", po_d1, q1});
  flip_flops.push_back(FlipFlop{"ff2", po_d2, q2});
  (void)po_cout;
  return SequentialCircuit(std::move(core), std::move(flip_flops));
}

}  // namespace rd
