#include "atpg/path_fault_sim.h"

#include <stdexcept>

namespace rd {

std::vector<Wave> waves_of_vectors(const Circuit& circuit,
                                   const std::vector<bool>& v1,
                                   const std::vector<bool>& v2) {
  if (v1.size() != circuit.inputs().size() ||
      v2.size() != circuit.inputs().size())
    throw std::invalid_argument("waves_of_vectors: arity mismatch");
  std::vector<Wave> waves(v1.size());
  for (std::size_t i = 0; i < v1.size(); ++i)
    waves[i] = Wave{to_value3(v1[i]), to_value3(v2[i]), true};
  return waves;
}

std::vector<Wave> simulate_waves(const Circuit& circuit,
                                 const std::vector<Wave>& pi_waves) {
  if (pi_waves.size() != circuit.inputs().size())
    throw std::invalid_argument("simulate_waves: arity mismatch");
  std::vector<Wave> waves(circuit.num_gates(), Wave::unknown());
  for (std::size_t i = 0; i < pi_waves.size(); ++i)
    waves[circuit.inputs()[i]] = pi_waves[i];
  std::vector<Wave> scratch;
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) continue;
    scratch.clear();
    for (GateId fanin : gate.fanins) scratch.push_back(waves[fanin]);
    waves[id] = eval_gate_wave(gate.type, scratch.data(), scratch.size());
  }
  return waves;
}

DetectionClass classify_path_detection(const Circuit& circuit,
                                       const LogicalPath& path,
                                       const std::vector<Wave>& gate_waves) {
  const GateId pi = path_pi(circuit, path.path);
  const Wave& launch = gate_waves[pi];
  // Both detection classes require the transition to be launched at
  // the path input with the fault's polarity.
  if (!(launch.has_transition() &&
        to_bool(launch.final) == path.final_pi_value))
    return DetectionClass::kNone;

  bool robust = true;
  bool expected = path.final_pi_value;
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    const Wave& on_path = gate_waves[lead.driver];
    // Robust propagation additionally needs a clean on-path
    // transition.
    if (!(on_path.clean && on_path.has_transition() &&
          to_bool(on_path.final) == expected))
      robust = false;
    if (has_controlling_value(sink.type)) {
      const bool nc = noncontrolling_value(sink.type);
      const bool on_path_final_nc = expected == nc;
      for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
        if (pin == lead.pin) continue;
        const Wave& side = gate_waves[sink.fanins[pin]];
        // Non-robust (static) sensitization: side settles at nc.
        if (side.final != to_value3(nc)) return DetectionClass::kNone;
        if (on_path_final_nc) {
          if (!side.clean) robust = false;
        } else {
          if (!(side.is_steady())) robust = false;
        }
      }
    }
    if (inverts(sink.type)) expected = !expected;
  }
  return robust ? DetectionClass::kRobust : DetectionClass::kNonRobust;
}

std::vector<DetectionClass> simulate_path_test(
    const Circuit& circuit, const std::vector<LogicalPath>& paths,
    const std::vector<Wave>& pi_waves) {
  const auto gate_waves = simulate_waves(circuit, pi_waves);
  std::vector<DetectionClass> result;
  result.reserve(paths.size());
  for (const LogicalPath& path : paths)
    result.push_back(classify_path_detection(circuit, path, gate_waves));
  return result;
}

}  // namespace rd
