// Non-robust path-delay-fault test generation (Definition 5 /
// Schulz-Fink-Fuchs criterion).
//
// A non-robust test is a two-pattern sequence <v1, v2> where v2
// sensitizes the path statically — every side input settles at the
// non-controlling value under v2 — and v1 launches the transition at
// the path's primary input.  Unlike a robust test its validity can be
// invalidated by other delay faults, but it is the standard fallback
// for robust-untestable paths, and T(C), the set of non-robustly
// testable paths, is the inner bound of the paper's Lemma 1 hierarchy.
//
// The generator runs a complete branch-and-bound over PI values on top
// of the trail-based implication engine: the NR side conditions are
// asserted up front (a conflict proves untestability immediately —
// this is exactly the T^sup approximation being exact on the fully
// constrained problem), then free PIs are enumerated to a concrete
// witness.  Following Remark 1, v1 is v2 with the path's PI
// complemented (a single-input-change test).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/stuck_at.h"
#include "netlist/circuit.h"
#include "paths/path.h"
#include "util/exec_guard.h"

namespace rd {

/// A two-pattern non-robust test.
struct NonRobustTest {
  std::vector<bool> v1;  // initialization vector (index-aligned with PIs)
  std::vector<bool> v2;  // sensitizing vector
};

/// Typed outcome of a non-robust search (mirrors RobustSearch):
/// kTestable carries the test, kRedundant is a completed untestability
/// proof, kAborted reports the budget or guard cause.
struct NonRobustSearch {
  AtpgVerdict verdict = AtpgVerdict::kAborted;
  std::optional<NonRobustTest> test;
  std::uint64_t nodes = 0;
  AbortReason abort_reason = AbortReason::kNone;
};

/// Complete search for a non-robust test.  Never throws on exhaustion:
/// the node budget and an optional execution guard both surface as a
/// kAborted verdict with the typed cause.
NonRobustSearch search_nonrobust_test(const Circuit& circuit,
                                      const LogicalPath& path,
                                      std::uint64_t max_nodes = 1u << 26,
                                      ExecGuard* guard = nullptr);

/// Complete search for a non-robust test; std::nullopt proves the path
/// non-robustly untestable.  Throws GuardTrippedError if `max_nodes`
/// search nodes are exceeded (large circuits only).  `nodes_used`,
/// when non-null, receives the number of search nodes expanded —
/// written on every exit, including the budget-exceeded throw.  Prefer
/// search_nonrobust_test for non-throwing typed outcomes.
std::optional<NonRobustTest> find_nonrobust_test(
    const Circuit& circuit, const LogicalPath& path,
    std::uint64_t max_nodes = 1u << 26, std::uint64_t* nodes_used = nullptr);

/// Validates a candidate test by plain simulation of v2 against the
/// (NR1)/(NR2) conditions and of v1 against the launch condition.
bool nonrobust_test_is_valid(const Circuit& circuit, const LogicalPath& path,
                             const NonRobustTest& test);

}  // namespace rd
