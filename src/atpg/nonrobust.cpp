#include "atpg/nonrobust.h"

#include <functional>
#include <stdexcept>

#include "sim/implication.h"
#include "sim/logic_sim.h"

namespace rd {

namespace {

/// Asserts (NR1) and (NR2) on the engine: the PI's final value and
/// every on-path side input at its non-controlling value.  Returns
/// false on conflict (path proven untestable).
bool assert_nr_conditions(const Circuit& circuit, const LogicalPath& path,
                          ImplicationEngine& engine) {
  if (!engine.assign(path_pi(circuit, path.path),
                     to_value3(path.final_pi_value)))
    return false;
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    if (!has_controlling_value(sink.type)) continue;
    const Value3 nc = to_value3(noncontrolling_value(sink.type));
    for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
      if (pin == lead.pin) continue;
      if (!engine.assign(sink.fanins[pin], nc)) return false;
    }
  }
  return true;
}

}  // namespace

NonRobustSearch search_nonrobust_test(const Circuit& circuit,
                                      const LogicalPath& path,
                                      std::uint64_t max_nodes,
                                      ExecGuard* guard) {
  if (!is_valid_path(circuit, path.path))
    throw std::invalid_argument("search_nonrobust_test: malformed path");
  NonRobustSearch result;
  ImplicationEngine engine(circuit);
  if (!assert_nr_conditions(circuit, path, engine)) {
    result.verdict = AtpgVerdict::kRedundant;
    return result;
  }

  // Complete the assignment over the PIs: the asserted gate values are
  // on the engine's trail, so any full PI assignment that survives the
  // implications satisfies every condition.
  const auto& pis = circuit.inputs();
  std::uint64_t nodes = 0;

  // Depth-first over PI indices, skipping already-implied ones.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < pis.size(); ++i) order.push_back(i);

  std::vector<Value3> witness(pis.size(), Value3::kUnknown);
  std::function<bool(std::size_t)> recurse = [&](std::size_t index) -> bool {
    if (++nodes > max_nodes)
      throw GuardTrippedError(AbortReason::kWorkBudget);
    if (guard != nullptr && !guard->check())
      throw GuardTrippedError(guard->reason());
    while (index < order.size() && is_known(engine.value(pis[order[index]])))
      ++index;
    if (index == order.size()) {
      for (std::size_t i = 0; i < pis.size(); ++i)
        witness[i] = engine.value(pis[i]);
      return true;
    }
    const GateId pi = pis[order[index]];
    for (const Value3 value : {Value3::kZero, Value3::kOne}) {
      const std::size_t mark = engine.mark();
      if (engine.assign(pi, value) && recurse(index + 1)) return true;
      engine.rollback(mark);
    }
    return false;
  };
  bool found = false;
  try {
    found = recurse(0);
  } catch (const GuardTrippedError& error) {
    result.nodes = nodes;
    result.abort_reason = error.reason();
    return result;
  }
  result.nodes = nodes;
  if (!found) {
    result.verdict = AtpgVerdict::kRedundant;
    return result;
  }

  NonRobustTest test;
  test.v2.resize(pis.size());
  for (std::size_t i = 0; i < pis.size(); ++i)
    test.v2[i] = to_bool(witness[i]);
  test.v1 = test.v2;
  // Launch: v1 complements the path's PI (Remark 1).
  for (std::size_t i = 0; i < pis.size(); ++i)
    if (pis[i] == path_pi(circuit, path.path)) test.v1[i] = !test.v1[i];
  result.verdict = AtpgVerdict::kTestable;
  result.test = std::move(test);
  return result;
}

std::optional<NonRobustTest> find_nonrobust_test(const Circuit& circuit,
                                                 const LogicalPath& path,
                                                 std::uint64_t max_nodes,
                                                 std::uint64_t* nodes_used) {
  NonRobustSearch result = search_nonrobust_test(circuit, path, max_nodes);
  if (nodes_used != nullptr) *nodes_used = result.nodes;
  if (result.verdict == AtpgVerdict::kAborted)
    throw GuardTrippedError(result.abort_reason);
  return std::move(result.test);
}

bool nonrobust_test_is_valid(const Circuit& circuit, const LogicalPath& path,
                             const NonRobustTest& test) {
  if (test.v1.size() != circuit.inputs().size() ||
      test.v2.size() != circuit.inputs().size())
    return false;
  const GateId pi = path_pi(circuit, path.path);

  // Launch: v1 puts the PI at the initial value, v2 at the final one.
  std::size_t pi_index = 0;
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
    if (circuit.inputs()[i] == pi) pi_index = i;
  if (test.v1[pi_index] != !path.final_pi_value) return false;
  if (test.v2[pi_index] != path.final_pi_value) return false;

  // (NR2) under v2.
  const auto values = simulate(circuit, test.v2);
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    if (!has_controlling_value(sink.type)) continue;
    const bool nc = noncontrolling_value(sink.type);
    for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
      if (pin == lead.pin) continue;
      if (values[sink.fanins[pin]] != nc) return false;
    }
  }
  return true;
}

}  // namespace rd
