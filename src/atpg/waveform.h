// Multi-valued waveform algebra for two-pattern delay tests.
//
// A waveform abstracts a line's behaviour across a two-pattern test
// <v1, v2>: its initial value (stable under v1), its final value
// (stable under v2), and whether the transition between them is *clean*
// (monotone / hazard-free regardless of gate delays).  The five classic
// values S0, S1, R (0→1), F (1→0), plus "dirty" variants with a known
// final value but possible hazards, plus unknowns.
//
// Robust path-delay-fault tests (Lin & Reddy) are characterized with
// exactly this information: a side input must be *steady*
// non-controlling when the on-path transition ends controlling, and
// must *settle cleanly* to non-controlling when it ends
// non-controlling.
#pragma once

#include <cstdint>

#include "netlist/gate_types.h"
#include "sim/value.h"

namespace rd {

/// Two-pattern waveform value.
struct Wave {
  Value3 initial = Value3::kUnknown;
  Value3 final = Value3::kUnknown;
  bool clean = true;  // no hazard possible between the stable phases

  bool operator==(const Wave& other) const = default;

  static constexpr Wave steady(bool value) {
    return Wave{to_value3(value), to_value3(value), true};
  }
  static constexpr Wave rising() {
    return Wave{Value3::kZero, Value3::kOne, true};
  }
  static constexpr Wave falling() {
    return Wave{Value3::kOne, Value3::kZero, true};
  }
  static constexpr Wave transition(bool final_value) {
    return final_value ? rising() : falling();
  }
  static constexpr Wave unknown() { return Wave{}; }

  bool is_steady() const {
    return clean && is_known(initial) && initial == final;
  }
  bool has_transition() const {
    return is_known(initial) && is_known(final) && initial != final;
  }
};

/// Evaluates a gate over waveform inputs, conservatively tracking
/// hazards: a clean result requires that no combination of gate/wire
/// delays can produce a glitch (e.g. AND of R and F can glitch to 1 and
/// is therefore dirty).  Not valid for kInput.
Wave eval_gate_wave(GateType type, const Wave* inputs, std::size_t count);

}  // namespace rd
