#include "atpg/robust.h"

#include <stdexcept>

namespace rd {

namespace {

/// Constraint status from a partial assignment.
enum class Status { kViolated, kSatisfied, kUndecided };

class RobustChecker {
 public:
  RobustChecker(const Circuit& circuit, const LogicalPath& path,
                std::uint64_t max_nodes, ExecGuard* guard)
      : circuit_(circuit), path_(path), max_nodes_(max_nodes),
        guard_(guard) {
    const std::size_t n = circuit.inputs().size();
    pi_waves_.assign(n, Wave::unknown());
    pi_assigned_.assign(n, false);
    pi_index_of_gate_.assign(circuit.num_gates(), kNone);
    for (std::size_t i = 0; i < n; ++i)
      pi_index_of_gate_[circuit.inputs()[i]] = i;

    // Per-gate PI support masks for decisive pruning (≤ 64 PIs; beyond
    // that pruning is skipped and only full assignments are checked).
    if (n <= 64) {
      support_.assign(circuit.num_gates(), 0);
      for (GateId id : circuit.topo_order()) {
        const Gate& gate = circuit.gate(id);
        if (gate.type == GateType::kInput) {
          support_[id] = std::uint64_t{1} << pi_index_of_gate_[id];
          continue;
        }
        for (GateId fanin : gate.fanins) support_[id] |= support_[fanin];
      }
    }
  }

  std::optional<RobustTest> search() {
    // The path's PI waveform is fixed by the fault.
    const GateId pi = path_pi(circuit_, path_.path);
    const std::size_t pi_index = pi_index_of_gate_[pi];
    pi_waves_[pi_index] = Wave::transition(path_.final_pi_value);
    pi_assigned_[pi_index] = true;

    // Decision order: remaining PIs by index.
    decision_order_.clear();
    for (std::size_t i = 0; i < pi_waves_.size(); ++i)
      if (!pi_assigned_[i]) decision_order_.push_back(i);

    if (recurse(0)) return pi_waves_;
    return std::nullopt;
  }

  /// Search nodes expanded so far (valid even after a budget throw).
  std::uint64_t nodes() const { return nodes_; }

  /// Evaluates the robust conditions for the current (partial)
  /// assignment.  Unassigned PIs contribute unknown waveforms; a
  /// constraint is only declared violated when every PI in its support
  /// is assigned (the evaluation is then exact).
  Status check() const {
    const auto waves = simulate_waves();
    bool undecided = false;
    bool expected = path_.final_pi_value;
    for (LeadId lead_id : path_.path.leads) {
      const Lead& lead = circuit_.lead(lead_id);
      const Gate& sink = circuit_.gate(lead.sink);
      // On-path transition must arrive cleanly with the right polarity.
      const Wave& on_path = waves[lead.driver];
      if (!(on_path.clean && on_path.has_transition() &&
            to_bool(on_path.final) == expected)) {
        if (decisive(lead.driver)) return Status::kViolated;
        undecided = true;
      }
      if (has_controlling_value(sink.type)) {
        const bool nc = noncontrolling_value(sink.type);
        const bool on_path_final_nc = expected == nc;
        for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
          if (pin == lead.pin) continue;
          const GateId side = sink.fanins[pin];
          const Wave& wave = waves[side];
          bool ok;
          if (on_path_final_nc) {
            // Side must settle cleanly on non-controlling (steady or a
            // controlling→non-controlling transition).
            ok = wave.clean && wave.final == to_value3(nc);
          } else {
            // Side must be steady non-controlling.
            ok = wave.is_steady() && wave.final == to_value3(nc);
          }
          if (!ok) {
            if (decisive(side)) return Status::kViolated;
            undecided = true;
          }
        }
      }
      if (inverts(sink.type)) expected = !expected;
    }
    return undecided ? Status::kUndecided : Status::kSatisfied;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  bool recurse(std::size_t depth) {
    if (++nodes_ > max_nodes_)
      throw GuardTrippedError(AbortReason::kWorkBudget);
    if (guard_ != nullptr && !guard_->check())
      throw GuardTrippedError(guard_->reason());
    switch (check()) {
      case Status::kViolated:
        return false;
      case Status::kSatisfied:
        // Fill remaining PIs with arbitrary steady values so the
        // returned test is concrete.
        for (std::size_t i = depth; i < decision_order_.size(); ++i) {
          pi_waves_[decision_order_[i]] = Wave::steady(false);
          pi_assigned_[decision_order_[i]] = true;
        }
        return true;
      case Status::kUndecided:
        break;
    }
    if (depth == decision_order_.size()) return false;
    const std::size_t pi_index = decision_order_[depth];
    static constexpr Wave kChoices[] = {Wave{Value3::kZero, Value3::kZero, true},
                                        Wave{Value3::kOne, Value3::kOne, true},
                                        Wave{Value3::kZero, Value3::kOne, true},
                                        Wave{Value3::kOne, Value3::kZero, true}};
    pi_assigned_[pi_index] = true;
    for (const Wave& choice : kChoices) {
      pi_waves_[pi_index] = choice;
      if (recurse(depth + 1)) return true;
    }
    pi_waves_[pi_index] = Wave::unknown();
    pi_assigned_[pi_index] = false;
    return false;
  }

  /// True if every PI feeding `gate` is assigned (its wave is exact).
  bool decisive(GateId gate) const {
    if (support_.empty()) return false;
    std::uint64_t mask = support_[gate];
    while (mask != 0) {
      const int bit = __builtin_ctzll(mask);
      if (!pi_assigned_[static_cast<std::size_t>(bit)]) return false;
      mask &= mask - 1;
    }
    return true;
  }

  std::vector<Wave> simulate_waves() const {
    std::vector<Wave> waves(circuit_.num_gates(), Wave::unknown());
    for (std::size_t i = 0; i < pi_waves_.size(); ++i)
      waves[circuit_.inputs()[i]] = pi_waves_[i];
    std::vector<Wave> scratch;
    for (GateId id : circuit_.topo_order()) {
      const Gate& gate = circuit_.gate(id);
      if (gate.type == GateType::kInput) continue;
      scratch.clear();
      for (GateId fanin : gate.fanins) scratch.push_back(waves[fanin]);
      waves[id] = eval_gate_wave(gate.type, scratch.data(), scratch.size());
    }
    return waves;
  }

  const Circuit& circuit_;
  const LogicalPath& path_;
  std::uint64_t max_nodes_;
  ExecGuard* guard_;
  std::uint64_t nodes_ = 0;
  std::vector<Wave> pi_waves_;
  std::vector<bool> pi_assigned_;
  std::vector<std::size_t> pi_index_of_gate_;
  std::vector<std::uint64_t> support_;
  std::vector<std::size_t> decision_order_;
};

}  // namespace

RobustSearch search_robust_test(const Circuit& circuit,
                                const LogicalPath& path,
                                std::uint64_t max_nodes, ExecGuard* guard) {
  if (!is_valid_path(circuit, path.path))
    throw std::invalid_argument("search_robust_test: malformed path");
  RobustChecker checker(circuit, path, max_nodes, guard);
  RobustSearch result;
  try {
    result.test = checker.search();
    result.verdict = result.test.has_value() ? AtpgVerdict::kTestable
                                             : AtpgVerdict::kRedundant;
  } catch (const GuardTrippedError& error) {
    result.verdict = AtpgVerdict::kAborted;
    result.abort_reason = error.reason();
  }
  result.nodes = checker.nodes();
  return result;
}

std::optional<RobustTest> find_robust_test(const Circuit& circuit,
                                           const LogicalPath& path,
                                           std::uint64_t max_nodes,
                                           std::uint64_t* nodes_used) {
  RobustSearch result = search_robust_test(circuit, path, max_nodes);
  if (nodes_used != nullptr) *nodes_used = result.nodes;
  if (result.verdict == AtpgVerdict::kAborted)
    throw GuardTrippedError(result.abort_reason);
  return std::move(result.test);
}

bool is_robustly_testable(const Circuit& circuit, const LogicalPath& path) {
  return find_robust_test(circuit, path).has_value();
}

bool robust_test_is_valid(const Circuit& circuit, const LogicalPath& path,
                          const RobustTest& test) {
  if (test.size() != circuit.inputs().size()) return false;
  // Re-simulate and apply the full condition check with every PI
  // assigned: every constraint is decisive.
  std::vector<Wave> waves(circuit.num_gates(), Wave::unknown());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Wave& wave = test[i];
    if (!wave.clean || !is_known(wave.initial) || !is_known(wave.final))
      return false;
    waves[circuit.inputs()[i]] = wave;
  }
  std::vector<Wave> scratch;
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) continue;
    scratch.clear();
    for (GateId fanin : gate.fanins) scratch.push_back(waves[fanin]);
    waves[id] = eval_gate_wave(gate.type, scratch.data(), scratch.size());
  }

  const GateId pi = path_pi(circuit, path.path);
  const Wave& launch = waves[pi];
  if (!(launch.has_transition() && to_bool(launch.final) == path.final_pi_value))
    return false;
  bool expected = path.final_pi_value;
  for (LeadId lead_id : path.path.leads) {
    const Lead& lead = circuit.lead(lead_id);
    const Gate& sink = circuit.gate(lead.sink);
    const Wave& on_path = waves[lead.driver];
    if (!(on_path.clean && on_path.has_transition() &&
          to_bool(on_path.final) == expected))
      return false;
    if (has_controlling_value(sink.type)) {
      const bool nc = noncontrolling_value(sink.type);
      const bool on_path_final_nc = expected == nc;
      for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
        if (pin == lead.pin) continue;
        const Wave& wave = waves[sink.fanins[pin]];
        if (on_path_final_nc) {
          if (!(wave.clean && wave.final == to_value3(nc))) return false;
        } else {
          if (!(wave.is_steady() && wave.final == to_value3(nc))) return false;
        }
      }
    }
    if (inverts(sink.type)) expected = !expected;
  }
  return true;
}

}  // namespace rd
