// Robust path-delay-fault testability checking.
//
// A robust test for a logical path (P, x̄→x) is a two-pattern sequence
// that measures P's delay in *any* implementation C_m (Section II; Lin
// & Reddy).  The classic sufficient-and-necessary structural
// characterization per on-path gate g:
//
//   * the on-path input carries a clean transition,
//   * if its final value is non-controlling: every side input settles
//     cleanly on the non-controlling value,
//   * if its final value is controlling: every side input is *steady*
//     non-controlling.
//
// The checker searches over per-PI waveform assignments {S0,S1,R,F}
// with constraint propagation by full waveform resimulation; it is
// exact (complete search) and intended for small circuits — the
// paper's example-circuit experiments (Figures 2-4) and the test
// suite's fault-coverage cross-checks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/stuck_at.h"
#include "atpg/waveform.h"
#include "netlist/circuit.h"
#include "paths/path.h"
#include "util/exec_guard.h"

namespace rd {

/// A found robust test: one waveform per PI (index-aligned with
/// circuit.inputs()); every entry is S0, S1, R or F.
using RobustTest = std::vector<Wave>;

/// Outcome of a robust-test search, typed instead of thrown: kTestable
/// carries the test, kRedundant is a completed proof of robust
/// untestability, kAborted reports the budget or guard cause in
/// `abort_reason`.
struct RobustSearch {
  AtpgVerdict verdict = AtpgVerdict::kAborted;
  std::optional<RobustTest> test;
  std::uint64_t nodes = 0;
  AbortReason abort_reason = AbortReason::kNone;
};

/// Complete search for a robust test.  Never throws on exhaustion: the
/// node budget and an optional execution guard both surface as a
/// kAborted verdict with the typed cause.
RobustSearch search_robust_test(const Circuit& circuit,
                                const LogicalPath& path,
                                std::uint64_t max_nodes = 1u << 26,
                                ExecGuard* guard = nullptr);

/// Searches for a robust test for the logical path.  Returns the test
/// if one exists, std::nullopt if the path is provably robust
/// untestable.  `max_nodes` bounds the search tree (throws
/// GuardTrippedError when exceeded — only possible on large circuits).
/// `nodes_used`, when non-null, receives the number of search nodes
/// expanded — written on every exit, including the budget-exceeded
/// throw.  Prefer search_robust_test for non-throwing typed outcomes.
std::optional<RobustTest> find_robust_test(const Circuit& circuit,
                                           const LogicalPath& path,
                                           std::uint64_t max_nodes = 1u << 26,
                                           std::uint64_t* nodes_used = nullptr);

/// Convenience predicate.
bool is_robustly_testable(const Circuit& circuit, const LogicalPath& path);

/// Verifies that a concrete PI waveform assignment robustly tests the
/// path (used by tests to validate found tests independently).
bool robust_test_is_valid(const Circuit& circuit, const LogicalPath& path,
                          const RobustTest& test);

}  // namespace rd
