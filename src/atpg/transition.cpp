#include "atpg/transition.h"

#include <functional>
#include <stdexcept>

#include "atpg/stuck_at.h"
#include "sim/implication.h"
#include "sim/logic_sim.h"

namespace rd {

namespace {

/// Completes the engine's partial assignment to full PI values by
/// branch-and-bound; returns the PI vector or nullopt if no completion
/// is consistent.  Throws GuardTrippedError on exhaustion; `nodes_out`
/// accumulates expanded nodes on every exit.
std::optional<std::vector<bool>> complete_assignment(
    const Circuit& circuit, ImplicationEngine& engine,
    std::uint64_t max_nodes, ExecGuard* guard, std::uint64_t& nodes_out) {
  const auto& pis = circuit.inputs();
  std::uint64_t& nodes = nodes_out;
  std::function<bool(std::size_t)> recurse = [&](std::size_t index) -> bool {
    if (++nodes > max_nodes)
      throw GuardTrippedError(AbortReason::kWorkBudget);
    if (guard != nullptr && !guard->check())
      throw GuardTrippedError(guard->reason());
    while (index < pis.size() && is_known(engine.value(pis[index]))) ++index;
    if (index == pis.size()) return true;
    for (const Value3 value : {Value3::kZero, Value3::kOne}) {
      const std::size_t mark = engine.mark();
      if (engine.assign(pis[index], value) && recurse(index + 1)) return true;
      engine.rollback(mark);
    }
    return false;
  };
  if (!recurse(0)) return std::nullopt;
  std::vector<bool> assignment(pis.size());
  for (std::size_t i = 0; i < pis.size(); ++i)
    assignment[i] = to_bool(engine.value(pis[i]));
  return assignment;
}

}  // namespace

std::vector<TransitionFault> all_transition_faults(const Circuit& circuit) {
  std::vector<TransitionFault> faults;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    if (circuit.gate(id).type == GateType::kOutput) continue;
    faults.push_back(TransitionFault{id, false});
    faults.push_back(TransitionFault{id, true});
  }
  return faults;
}

TransitionSearch search_transition_test(const Circuit& circuit,
                                        const TransitionFault& fault,
                                        std::uint64_t max_nodes,
                                        ExecGuard* guard) {
  TransitionSearch result;
  // A slow-to-rise output looks stuck at 0 when sampled: v2 must detect
  // s-a-0 (and symmetrically for slow-to-fall).
  const bool stuck_value = fault.slow_to_rise ? false : true;
  const AtpgResult detection =
      podem(circuit, StuckFault::on_output(fault.gate, stuck_value),
            max_nodes, guard);
  result.nodes = detection.nodes;
  if (detection.verdict == AtpgVerdict::kAborted) {
    result.abort_reason = detection.abort_reason;
    return result;
  }
  if (detection.verdict == AtpgVerdict::kRedundant) {
    result.verdict = AtpgVerdict::kRedundant;
    return result;
  }

  // v1 justifies the pre-transition value at the fault site.
  ImplicationEngine engine(circuit);
  if (!engine.assign(fault.gate, to_value3(stuck_value))) {
    result.verdict = AtpgVerdict::kRedundant;
    return result;
  }
  std::optional<std::vector<bool>> v1;
  try {
    v1 = complete_assignment(circuit, engine, max_nodes, guard, result.nodes);
  } catch (const GuardTrippedError& error) {
    result.abort_reason = error.reason();
    return result;
  }
  if (!v1.has_value()) {
    result.verdict = AtpgVerdict::kRedundant;
    return result;
  }

  TransitionTest test;
  test.v1 = *v1;
  test.v2.resize(circuit.inputs().size());
  for (std::size_t i = 0; i < test.v2.size(); ++i) {
    const Value3 value = detection.test[i];
    // PODEM don't-cares: keep v1's value so the launch is a
    // single-site transition where possible.
    test.v2[i] = is_known(value) ? to_bool(value) : test.v1[i];
  }
  result.verdict = AtpgVerdict::kTestable;
  result.test = std::move(test);
  return result;
}

std::optional<TransitionTest> find_transition_test(
    const Circuit& circuit, const TransitionFault& fault,
    std::uint64_t max_nodes) {
  TransitionSearch result = search_transition_test(circuit, fault, max_nodes);
  if (result.verdict == AtpgVerdict::kAborted)
    throw GuardTrippedError(result.abort_reason);
  return std::move(result.test);
}

bool transition_test_is_valid(const Circuit& circuit,
                              const TransitionFault& fault,
                              const TransitionTest& test) {
  if (test.v1.size() != circuit.inputs().size() ||
      test.v2.size() != circuit.inputs().size())
    return false;
  const bool initial = fault.slow_to_rise ? false : true;
  const auto before = simulate(circuit, test.v1);
  if (before[fault.gate] != initial) return false;
  std::vector<Value3> v2(circuit.inputs().size());
  for (std::size_t i = 0; i < v2.size(); ++i) v2[i] = to_value3(test.v2[i]);
  return detects_fault(circuit, StuckFault::on_output(fault.gate, initial),
                       v2);
}

double transition_coverage(const Circuit& circuit,
                           const std::vector<std::vector<Wave>>& tests) {
  const auto faults = all_transition_faults(circuit);
  if (faults.empty()) return 100.0;
  std::vector<bool> detected(faults.size(), false);
  for (const auto& waves : tests) {
    if (waves.size() != circuit.inputs().size()) continue;
    std::vector<bool> v1(waves.size());
    std::vector<bool> v2(waves.size());
    bool usable = true;
    for (std::size_t i = 0; i < waves.size(); ++i) {
      if (!is_known(waves[i].initial) || !is_known(waves[i].final)) {
        usable = false;
        break;
      }
      v1[i] = to_bool(waves[i].initial);
      v2[i] = to_bool(waves[i].final);
    }
    if (!usable) continue;
    const auto before = simulate(circuit, v1);
    std::vector<Value3> v2_values(v2.size());
    for (std::size_t i = 0; i < v2.size(); ++i) v2_values[i] = to_value3(v2[i]);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detected[f]) continue;
      const bool initial = faults[f].slow_to_rise ? false : true;
      if (before[faults[f].gate] != initial) continue;  // no launch
      if (detects_fault(circuit,
                        StuckFault::on_output(faults[f].gate, initial),
                        v2_values))
        detected[f] = true;
    }
  }
  std::size_t count = 0;
  for (const bool d : detected) count += d;
  return 100.0 * static_cast<double>(count) /
         static_cast<double>(faults.size());
}

}  // namespace rd
