// Path delay fault simulation for two-pattern tests (in the spirit of
// Schulz/Fink/Fuchs [6]): given per-PI waveforms of a test, classify
// which logical paths the test detects robustly, which only
// non-robustly, and which not at all.
//
// One waveform simulation of the circuit is shared by all queried
// paths, so simulating a test against a large must-test list is
// O(gates + Σ path lengths).
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/waveform.h"
#include "netlist/circuit.h"
#include "paths/path.h"

namespace rd {

enum class DetectionClass : std::uint8_t { kNone = 0, kNonRobust, kRobust };

/// Per-PI waveforms for the two-pattern test <v1, v2>.
std::vector<Wave> waves_of_vectors(const Circuit& circuit,
                                   const std::vector<bool>& v1,
                                   const std::vector<bool>& v2);

/// Waveform simulation over the whole circuit (per-gate results,
/// indexed by GateId).
std::vector<Wave> simulate_waves(const Circuit& circuit,
                                 const std::vector<Wave>& pi_waves);

/// Detection classification of one path under precomputed gate waves.
DetectionClass classify_path_detection(const Circuit& circuit,
                                       const LogicalPath& path,
                                       const std::vector<Wave>& gate_waves);

/// Batch variant: one simulation, every path classified.
std::vector<DetectionClass> simulate_path_test(
    const Circuit& circuit, const std::vector<LogicalPath>& paths,
    const std::vector<Wave>& pi_waves);

}  // namespace rd
