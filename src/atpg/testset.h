// Complete two-pattern test-set generation for a list of path delay
// faults: robust ATPG first, non-robust fallback, greedy compaction by
// fault simulation (each generated test is simulated against every
// still-undetected path so one test can cover many faults).
//
// This is the downstream consumer the paper's RD identification feeds:
// the input path list is typically the classifier's kept (non-RD)
// paths, and the summary's coverage is exactly the fault-coverage
// notion of Example 3 (robustly testable / must-test).
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/path_fault_sim.h"
#include "atpg/waveform.h"
#include "netlist/circuit.h"
#include "paths/path.h"
#include "util/exec_guard.h"

namespace rd {

struct TestSetOptions {
  /// Search budgets per path.
  std::uint64_t max_robust_nodes = 1u << 20;
  std::uint64_t max_nonrobust_nodes = 1u << 20;

  /// Also generate non-robust tests for robust-untestable paths.
  bool allow_nonrobust = true;

  /// Optional execution guard shared by every per-path search.  A
  /// per-path node-budget abort only skips that path (see the
  /// *_budget_exceeded counters); a guard trip stops the whole
  /// generation with a partial, still-valid test set.
  ExecGuard* guard = nullptr;
};

struct GeneratedTestSet {
  /// The two-pattern tests, as per-PI waveforms.
  std::vector<std::vector<Wave>> tests;

  /// Per input path: best detection achieved over the set.
  std::vector<DetectionClass> detection;

  /// Per input path: index into `tests` of the detecting test (-1 if
  /// undetected).
  std::vector<int> detected_by;

  std::size_t robust_count = 0;
  std::size_t nonrobust_count = 0;
  std::size_t undetected_count = 0;

  /// Robust coverage in the sense of Theorem 1's discussion: robustly
  /// detected / total (percent).
  double robust_coverage_percent = 0.0;

  /// Observability: total search nodes expanded by the robust and
  /// non-robust generators across all target paths (includes the nodes
  /// of budget-exceeded searches).
  std::uint64_t robust_nodes = 0;
  std::uint64_t nonrobust_nodes = 0;

  /// Observability: paths whose per-path search budget was exhausted
  /// in each pass (those paths fall through, not fail the run).
  std::size_t robust_budget_exceeded = 0;
  std::size_t nonrobust_budget_exceeded = 0;

  /// Observability: wall-clock seconds of the whole generation +
  /// compaction flow.  Nondeterministic.
  double wall_seconds = 0.0;

  /// False when a guard trip stopped generation early; the tests
  /// emitted so far and their detection records remain valid.
  bool completed = true;
  AbortReason abort_reason = AbortReason::kNone;
};

/// Generates and compacts a test set for `paths`.
GeneratedTestSet generate_test_set(const Circuit& circuit,
                                   const std::vector<LogicalPath>& paths,
                                   const TestSetOptions& options = {});

}  // namespace rd
