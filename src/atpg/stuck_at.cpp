#include "atpg/stuck_at.h"

#include <stdexcept>

#include "sim/logic_sim.h"
#include "util/rng.h"

namespace rd {

namespace {

/// Good/faulty machine pair per gate.
struct MachineValues {
  std::vector<Value3> good;
  std::vector<Value3> faulty;
};

/// Three-valued simulation of both machines with the fault injected.
MachineValues simulate_pair(const Circuit& circuit, const StuckFault& fault,
                            const std::vector<Value3>& pi_values) {
  MachineValues machines;
  machines.good.assign(circuit.num_gates(), Value3::kUnknown);
  machines.faulty.assign(circuit.num_gates(), Value3::kUnknown);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    machines.good[circuit.inputs()[i]] = pi_values[i];
    machines.faulty[circuit.inputs()[i]] = pi_values[i];
  }
  std::vector<Value3> scratch;
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type != GateType::kInput) {
      scratch.clear();
      for (GateId fanin : gate.fanins) scratch.push_back(machines.good[fanin]);
      machines.good[id] = eval_gate3(gate.type, scratch.data(), scratch.size());

      scratch.clear();
      for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
        Value3 value = machines.faulty[gate.fanins[pin]];
        if (fault.site == StuckFault::Site::kLead &&
            gate.fanin_leads[pin] == fault.index)
          value = to_value3(fault.stuck_value);
        scratch.push_back(value);
      }
      machines.faulty[id] =
          eval_gate3(gate.type, scratch.data(), scratch.size());
    }
    if (fault.site == StuckFault::Site::kGateOutput && id == fault.index)
      machines.faulty[id] = to_value3(fault.stuck_value);
  }
  return machines;
}

/// The gate whose *good* value must differ from the stuck value to
/// activate the fault (the lead's driver, or the faulty gate itself).
GateId fault_site_gate(const Circuit& circuit, const StuckFault& fault) {
  return fault.site == StuckFault::Site::kLead
             ? circuit.lead(fault.index).driver
             : fault.index;
}

class Podem {
 public:
  Podem(const Circuit& circuit, const StuckFault& fault,
        std::uint64_t max_nodes, ExecGuard* guard)
      : circuit_(circuit), fault_(fault), max_nodes_(max_nodes),
        guard_(guard) {
    pi_values_.assign(circuit.inputs().size(), Value3::kUnknown);
    pi_index_of_gate_.assign(circuit.num_gates(), kNone);
    for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
      pi_index_of_gate_[circuit.inputs()[i]] = i;
  }

  AtpgResult run() {
    AtpgResult result;
    bool found;
    try {
      found = recurse();
    } catch (const GuardTrippedError& error) {
      result.verdict = AtpgVerdict::kAborted;
      result.abort_reason = error.reason();
      result.nodes = nodes_;
      return result;
    }
    result.verdict = found ? AtpgVerdict::kTestable : AtpgVerdict::kRedundant;
    if (found) result.test = pi_values_;
    result.nodes = nodes_;
    return result;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  bool recurse() {
    if (++nodes_ > max_nodes_)
      throw GuardTrippedError(AbortReason::kWorkBudget);
    if (guard_ != nullptr && !guard_->check())
      throw GuardTrippedError(guard_->reason());
    const auto machines = simulate_pair(circuit_, fault_, pi_values_);

    // Detected?
    for (GateId po : circuit_.outputs()) {
      if (is_known(machines.good[po]) && is_known(machines.faulty[po]) &&
          machines.good[po] != machines.faulty[po])
        return true;
    }

    const GateId site = fault_site_gate(circuit_, fault_);
    const Value3 site_good = machines.good[site];
    const Value3 activation = to_value3(!fault_.stuck_value);

    // Activation impossible with the current (monotone) assignment.
    if (is_known(site_good) && site_good != activation) return false;

    GateId objective_gate = kNullGate;
    Value3 objective_value = Value3::kUnknown;

    if (!is_known(site_good)) {
      objective_gate = site;
      objective_value = activation;
    } else {
      // Fault is activated; drive a D-frontier gate.  D-frontier: gates
      // with a divergent input and an undecided divergence at the
      // output.
      GateId frontier = kNullGate;
      for (GateId id : circuit_.topo_order()) {
        const Gate& gate = circuit_.gate(id);
        if (gate.type == GateType::kInput) continue;
        if (is_known(machines.good[id]) && is_known(machines.faulty[id]))
          continue;
        bool has_divergent_input = false;
        for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
          const GateId fanin = gate.fanins[pin];
          Value3 faulty_in = machines.faulty[fanin];
          if (fault_.site == StuckFault::Site::kLead &&
              gate.fanin_leads[pin] == fault_.index)
            faulty_in = to_value3(fault_.stuck_value);
          if (is_known(machines.good[fanin]) && is_known(faulty_in) &&
              machines.good[fanin] != faulty_in) {
            has_divergent_input = true;
            break;
          }
        }
        if (has_divergent_input) {
          frontier = id;
          break;
        }
      }
      if (frontier == kNullGate) return false;  // effect cannot propagate

      // Objective: set one unknown side input of the frontier gate to
      // non-controlling.
      const Gate& gate = circuit_.gate(frontier);
      if (!has_controlling_value(gate.type)) return false;  // cannot happen
      const Value3 nc = to_value3(noncontrolling_value(gate.type));
      for (GateId fanin : gate.fanins) {
        if (!is_known(machines.good[fanin])) {
          objective_gate = fanin;
          objective_value = nc;
          break;
        }
      }
      if (objective_gate == kNullGate) return false;
    }

    // Backtrace the objective to an unassigned PI.
    GateId gate = objective_gate;
    Value3 value = objective_value;
    while (circuit_.gate(gate).type != GateType::kInput) {
      const Gate& g = circuit_.gate(gate);
      Value3 input_value;
      GateId next = kNullGate;
      if (g.type == GateType::kNot || g.type == GateType::kBuf ||
          g.type == GateType::kOutput) {
        input_value = g.type == GateType::kNot ? negate(value) : value;
        next = g.fanins[0];
      } else {
        const Value3 ctrl = to_value3(controlling_value(g.type));
        const Value3 needed =
            value == to_value3(controlled_output(g.type)) ? ctrl : negate(ctrl);
        // Pick the first input with unknown good value.
        for (GateId fanin : g.fanins) {
          if (!is_known(machines.good[fanin])) {
            next = fanin;
            break;
          }
        }
        if (next == kNullGate) return false;  // objective unreachable
        input_value = needed;
      }
      gate = next;
      value = input_value;
    }

    const std::size_t pi = pi_index_of_gate_[gate];
    if (pi == kNone || is_known(pi_values_[pi])) return false;

    pi_values_[pi] = value;
    if (recurse()) return true;
    pi_values_[pi] = negate(value);
    if (recurse()) return true;
    pi_values_[pi] = Value3::kUnknown;
    return false;
  }

  const Circuit& circuit_;
  const StuckFault& fault_;
  std::uint64_t max_nodes_;
  ExecGuard* guard_;
  std::uint64_t nodes_ = 0;
  std::vector<Value3> pi_values_;
  std::vector<std::size_t> pi_index_of_gate_;
};

}  // namespace

AtpgResult podem(const Circuit& circuit, const StuckFault& fault,
                 std::uint64_t max_nodes, ExecGuard* guard) {
  Podem engine(circuit, fault, max_nodes, guard);
  return engine.run();
}

bool detects_fault(const Circuit& circuit, const StuckFault& fault,
                   const std::vector<Value3>& pi_values) {
  const auto machines = simulate_pair(circuit, fault, pi_values);
  for (GateId po : circuit.outputs()) {
    if (is_known(machines.good[po]) && is_known(machines.faulty[po]) &&
        machines.good[po] != machines.faulty[po])
      return true;
  }
  return false;
}

bool random_patterns_detect(const Circuit& circuit, const StuckFault& fault,
                            std::uint64_t seed, std::size_t num_words) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(circuit.inputs().size());
  for (std::size_t round = 0; round < num_words; ++round) {
    for (auto& word : words) word = rng.next_u64();
    const auto good = simulate64(circuit, words);

    // Faulty machine: re-simulate with the fault injected.
    std::vector<std::uint64_t> faulty(circuit.num_gates(), 0);
    for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
      faulty[circuit.inputs()[i]] = words[i];
    for (GateId id : circuit.topo_order()) {
      const Gate& gate = circuit.gate(id);
      if (gate.type != GateType::kInput) {
        auto input_word = [&](std::uint32_t pin) {
          if (fault.site == StuckFault::Site::kLead &&
              gate.fanin_leads[pin] == fault.index)
            return fault.stuck_value ? ~std::uint64_t{0} : std::uint64_t{0};
          return faulty[gate.fanins[pin]];
        };
        std::uint64_t word = 0;
        switch (gate.type) {
          case GateType::kOutput:
          case GateType::kBuf:
            word = input_word(0);
            break;
          case GateType::kNot:
            word = ~input_word(0);
            break;
          case GateType::kAnd:
          case GateType::kNand: {
            word = ~std::uint64_t{0};
            for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin)
              word &= input_word(pin);
            if (gate.type == GateType::kNand) word = ~word;
            break;
          }
          case GateType::kOr:
          case GateType::kNor: {
            word = 0;
            for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin)
              word |= input_word(pin);
            if (gate.type == GateType::kNor) word = ~word;
            break;
          }
          case GateType::kInput:
            break;
        }
        faulty[id] = word;
      }
      if (fault.site == StuckFault::Site::kGateOutput && id == fault.index)
        faulty[id] = fault.stuck_value ? ~std::uint64_t{0} : std::uint64_t{0};
    }
    for (GateId po : circuit.outputs())
      if ((good[po] ^ faulty[po]) != 0) return true;
  }
  return false;
}

}  // namespace rd
