// Transition (gate delay) fault model — the paper's introduction
// contrasts it with path delay faults ([3]): a single gate is slow to
// rise or slow to fall, lumped at its output.  A two-pattern test
// launches the corresponding transition at the fault site with v1→v2
// and propagates the (late) value to a PO, which is exactly "v2
// detects the matching stuck-at fault".
//
// The module exists for the crossover experiments: a compact path
// delay test set also covers most transition faults, and transition
// coverage is the classic cheaper metric to compare against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/stuck_at.h"
#include "atpg/waveform.h"
#include "netlist/circuit.h"
#include "util/exec_guard.h"

namespace rd {

struct TransitionFault {
  GateId gate = kNullGate;
  bool slow_to_rise = false;  // needs a 0->1 launch at the gate output

  bool operator==(const TransitionFault& other) const = default;
};

/// Both polarities for every logic gate and PI (PO markers excluded —
/// they are observation points, not logic).
std::vector<TransitionFault> all_transition_faults(const Circuit& circuit);

/// A two-pattern transition-fault test.
struct TransitionTest {
  std::vector<bool> v1;
  std::vector<bool> v2;
};

/// Typed outcome of a transition-test search: kTestable carries the
/// test, kRedundant is a completed untestability proof, kAborted
/// reports the budget or guard cause.
struct TransitionSearch {
  AtpgVerdict verdict = AtpgVerdict::kAborted;
  std::optional<TransitionTest> test;
  std::uint64_t nodes = 0;
  AbortReason abort_reason = AbortReason::kNone;
};

/// Complete search: v2 detecting the matching stuck-at fault (PODEM),
/// then v1 justifying the initial value at the fault site (implication
/// engine + branch-and-bound).  Never throws on exhaustion: budget and
/// guard both surface as a kAborted verdict with the typed cause.
TransitionSearch search_transition_test(const Circuit& circuit,
                                        const TransitionFault& fault,
                                        std::uint64_t max_nodes = 1u << 22,
                                        ExecGuard* guard = nullptr);

/// Throwing convenience wrapper: nullopt = untestable; throws
/// GuardTrippedError on budget/guard exhaustion.  Prefer
/// search_transition_test for non-throwing typed outcomes.
std::optional<TransitionTest> find_transition_test(
    const Circuit& circuit, const TransitionFault& fault,
    std::uint64_t max_nodes = 1u << 22);

/// Checks a candidate test by simulation.
bool transition_test_is_valid(const Circuit& circuit,
                              const TransitionFault& fault,
                              const TransitionTest& test);

/// Fraction (in percent) of all transition faults detected by a set of
/// two-pattern tests given as per-PI waveforms (e.g. a generated path
/// delay test set — the crossover metric).
double transition_coverage(const Circuit& circuit,
                           const std::vector<std::vector<Wave>>& tests);

}  // namespace rd
