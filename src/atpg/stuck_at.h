// Single stuck-at fault model, PODEM test generation with complete
// redundancy proof, and a 64-way random-pattern fault-simulation
// prefilter.
//
// These are the engines behind the reimplementation of the approach of
// Lam et al. [1] (src/unfold): RD-set identification there reduces to
// proving single stuck-at faults redundant in the leaf-dag.  PODEM is
// run to exhaustion, so a kRedundant verdict is a proof; kAborted is
// returned when the node budget runs out.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/circuit.h"
#include "sim/value.h"
#include "util/exec_guard.h"

namespace rd {

/// A single stuck-at fault on a lead (input pin) or a gate output.
struct StuckFault {
  enum class Site : std::uint8_t { kGateOutput, kLead };
  Site site = Site::kLead;
  std::uint32_t index = 0;  // GateId or LeadId
  bool stuck_value = false;

  static StuckFault on_lead(LeadId lead, bool value) {
    return StuckFault{Site::kLead, lead, value};
  }
  static StuckFault on_output(GateId gate, bool value) {
    return StuckFault{Site::kGateOutput, gate, value};
  }
};

enum class AtpgVerdict : std::uint8_t { kTestable, kRedundant, kAborted };

struct AtpgResult {
  AtpgVerdict verdict = AtpgVerdict::kAborted;
  /// PI assignment detecting the fault (entries may remain unknown =
  /// don't-care), index-aligned with circuit.inputs().  Only populated
  /// for kTestable.
  std::vector<Value3> test;
  std::uint64_t nodes = 0;
  /// Why the search stopped when verdict == kAborted: kWorkBudget for
  /// the node budget, otherwise the guard's trip cause.  kNone on
  /// kTestable / kRedundant.
  AbortReason abort_reason = AbortReason::kNone;
};

/// PODEM.  Complete unless the node budget is exceeded or the guard
/// trips (verdict kAborted with the typed cause — never an exception).
AtpgResult podem(const Circuit& circuit, const StuckFault& fault,
                 std::uint64_t max_nodes = 1u << 22,
                 ExecGuard* guard = nullptr);

/// Good/faulty simulation of one fully/partially specified pattern;
/// returns true if the fault is detected at some PO (definitely, under
/// three-valued semantics).  Exposed for tests and the fault simulator.
bool detects_fault(const Circuit& circuit, const StuckFault& fault,
                   const std::vector<Value3>& pi_values);

/// 64-way parallel random-pattern check: returns true if any of the
/// `num_words * 64` random patterns detects the fault.  Used to filter
/// obviously-testable faults before the expensive PODEM proof.
bool random_patterns_detect(const Circuit& circuit, const StuckFault& fault,
                            std::uint64_t seed, std::size_t num_words = 4);

}  // namespace rd
