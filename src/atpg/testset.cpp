#include "atpg/testset.h"

#include <optional>
#include <stdexcept>

#include "atpg/nonrobust.h"
#include "atpg/robust.h"
#include "util/stopwatch.h"

namespace rd {

namespace {

/// Runs one test against every still-open path, upgrading detection
/// records; returns true if it newly detected anything.
bool apply_test(const Circuit& circuit, const std::vector<LogicalPath>& paths,
                const std::vector<Wave>& test, int test_index,
                GeneratedTestSet& result) {
  const auto gate_waves = simulate_waves(circuit, test);
  bool useful = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (result.detection[i] == DetectionClass::kRobust) continue;
    const DetectionClass detection =
        classify_path_detection(circuit, paths[i], gate_waves);
    if (detection > result.detection[i]) {
      result.detection[i] = detection;
      result.detected_by[i] = test_index;
      useful = true;
    }
  }
  return useful;
}

}  // namespace

GeneratedTestSet generate_test_set(const Circuit& circuit,
                                   const std::vector<LogicalPath>& paths,
                                   const TestSetOptions& options) {
  Stopwatch watch;
  GeneratedTestSet result;
  result.detection.assign(paths.size(), DetectionClass::kNone);
  result.detected_by.assign(paths.size(), -1);

  // A guard trip aborts the whole generation (the per-path node budget
  // only skips the current path and is counted separately).
  const auto guard_tripped = [&] {
    return options.guard != nullptr && options.guard->tripped();
  };

  // Robust pass with greedy compaction.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (guard_tripped()) break;
    if (result.detection[i] == DetectionClass::kRobust) continue;
    const RobustSearch search = search_robust_test(
        circuit, paths[i], options.max_robust_nodes, options.guard);
    result.robust_nodes += search.nodes;
    if (search.verdict == AtpgVerdict::kAborted) {
      if (search.abort_reason == AbortReason::kWorkBudget &&
          !guard_tripped()) {
        ++result.robust_budget_exceeded;
        continue;  // budget exceeded: leave for the non-robust pass
      }
      break;  // guard trip: stop the whole generation
    }
    if (!search.test.has_value()) continue;
    const int index = static_cast<int>(result.tests.size());
    result.tests.push_back(std::move(*search.test));
    apply_test(circuit, paths, result.tests.back(), index, result);
  }

  // Non-robust fallback for whatever is left.
  if (options.allow_nonrobust) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (guard_tripped()) break;
      if (result.detection[i] != DetectionClass::kNone) continue;
      const NonRobustSearch search = search_nonrobust_test(
          circuit, paths[i], options.max_nonrobust_nodes, options.guard);
      result.nonrobust_nodes += search.nodes;
      if (search.verdict == AtpgVerdict::kAborted) {
        if (search.abort_reason == AbortReason::kWorkBudget &&
            !guard_tripped()) {
          ++result.nonrobust_budget_exceeded;
          continue;
        }
        break;
      }
      if (!search.test.has_value()) continue;
      const int index = static_cast<int>(result.tests.size());
      result.tests.push_back(
          waves_of_vectors(circuit, search.test->v1, search.test->v2));
      apply_test(circuit, paths, result.tests.back(), index, result);
    }
  }

  if (guard_tripped()) {
    result.completed = false;
    result.abort_reason = options.guard->reason();
  }

  for (const DetectionClass detection : result.detection) {
    switch (detection) {
      case DetectionClass::kRobust: ++result.robust_count; break;
      case DetectionClass::kNonRobust: ++result.nonrobust_count; break;
      case DetectionClass::kNone: ++result.undetected_count; break;
    }
  }
  if (!paths.empty())
    result.robust_coverage_percent =
        100.0 * static_cast<double>(result.robust_count) /
        static_cast<double>(paths.size());
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace rd
