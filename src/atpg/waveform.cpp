#include "atpg/waveform.h"

namespace rd {

namespace {

Wave invert(Wave wave) {
  wave.initial = negate(wave.initial);
  wave.final = negate(wave.final);
  return wave;
}

}  // namespace

Wave eval_gate_wave(GateType type, const Wave* inputs, std::size_t count) {
  switch (type) {
    case GateType::kInput:
      return Wave::unknown();
    case GateType::kOutput:
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return invert(inputs[0]);
    default:
      break;
  }

  const Value3 ctrl = to_value3(controlling_value(type));
  const Value3 nc = negate(ctrl);

  // A steady controlling input pins the output for the whole test.
  for (std::size_t i = 0; i < count; ++i) {
    const Wave& in = inputs[i];
    if (in.clean && in.initial == ctrl && in.final == ctrl)
      return inverts(type) ? Wave::steady(to_bool(nc))
                           : Wave::steady(to_bool(ctrl));
  }

  // Componentwise initial/final evaluation.
  Value3 initial_acc = nc;
  Value3 final_acc = nc;
  bool any_rising = false;
  bool any_falling = false;
  bool any_dirty = false;
  for (std::size_t i = 0; i < count; ++i) {
    const Wave& in = inputs[i];
    if (in.initial == ctrl) initial_acc = ctrl;
    else if (!is_known(in.initial) && initial_acc != ctrl)
      initial_acc = Value3::kUnknown;
    if (in.final == ctrl) final_acc = ctrl;
    else if (!is_known(in.final) && final_acc != ctrl)
      final_acc = Value3::kUnknown;
    if (!in.clean) any_dirty = true;
    if (in.has_transition()) (to_bool(in.final) ? any_rising : any_falling) = true;
    if (!is_known(in.initial) || !is_known(in.final)) any_dirty = true;
  }

  // Hazard analysis: opposing transitions on different inputs, or any
  // dirty input, may glitch the output.  (A steady controlling input
  // was already handled above and masks everything.)
  bool clean = !any_dirty && !(any_rising && any_falling);

  Wave out;
  out.initial = initial_acc;
  out.final = final_acc;
  // If either phase is unknown the wave is not clean in any usable
  // sense; keep clean=false so callers stay conservative.
  if (!is_known(out.initial) || !is_known(out.final)) clean = false;
  out.clean = clean;
  if (inverts(type)) out = invert(out);
  return out;
}

}  // namespace rd
