// Minimal two-level to multi-level logic synthesis — the stand-in for
// SIS `script.rugged` used by the paper to produce the Table III
// circuits from the MCNC two-level benchmarks.
//
// Pipeline:
//   1. cover cleanup: drop per-output single-cube containments,
//   2. greedy common-cube extraction (fast_extract-style): repeatedly
//      factor out the literal pair shared by the most product terms,
//      creating shared AND nodes and hence internal fanout and
//      reconvergence — the structural features the RD analysis cares
//      about,
//   3. network construction: literals (with shared inverters), AND
//      trees per product term, OR trees per output, all decomposed to a
//      bounded fan-in.
//
// The result is a plain AND/OR/NOT netlist, finalized and ready for the
// classifiers and for the leaf-dag baseline.
#pragma once

#include <cstddef>

#include "io/pla_io.h"
#include "netlist/circuit.h"

namespace rd {

struct SynthOptions {
  /// Maximum fan-in for generated AND/OR gates (wider ops become
  /// balanced trees).
  std::size_t max_fanin = 5;

  /// Run the common-cube extraction phase (disable for a flat
  /// two-level network).
  bool extract_common_cubes = true;

  /// Stop extracting once no pair of literals is shared by at least
  /// this many product terms.
  std::size_t min_pair_occurrences = 2;
};

/// Synthesizes a multi-level circuit implementing the PLA's ON-set
/// functions.  Throws std::invalid_argument for degenerate covers
/// (constant outputs, zero-literal cubes).
Circuit synthesize_multilevel(const Pla& pla, const SynthOptions& options = {});

/// Flat two-level reference implementation of the same PLA (cube
/// sharing across outputs, no extraction, unbounded fan-in).  Used by
/// tests to check functional equivalence of the synthesized network.
Circuit synthesize_two_level(const Pla& pla);

}  // namespace rd
