#include "synth/synth.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rd {

namespace {

// Literal encoding during extraction: input var v positive = 2v,
// negative = 2v+1; extracted AND divisors get ids from 2*num_inputs up.
using Literal = std::uint32_t;

struct WorkCube {
  std::vector<Literal> literals;  // sorted
  std::vector<bool> outputs;
};

struct Divisor {
  Literal a;
  Literal b;
};

std::vector<WorkCube> to_work_cubes(const Pla& pla) {
  std::vector<WorkCube> cubes;
  for (const Cube& cube : pla.cubes) {
    const bool on_somewhere =
        std::any_of(cube.outputs.begin(), cube.outputs.end(),
                    [](bool on) { return on; });
    if (!on_somewhere) continue;
    WorkCube work;
    work.outputs = cube.outputs;
    for (std::size_t var = 0; var < cube.inputs.size(); ++var) {
      if (cube.inputs[var] == CubeLit::kPositive)
        work.literals.push_back(static_cast<Literal>(2 * var));
      else if (cube.inputs[var] == CubeLit::kNegative)
        work.literals.push_back(static_cast<Literal>(2 * var + 1));
    }
    if (work.literals.empty())
      throw std::invalid_argument("synth: tautological cube (constant output)");
    cubes.push_back(std::move(work));
  }
  return cubes;
}

/// Removes per-output single-cube containment: if cube A's literal set
/// is a subset of cube B's, B is redundant wherever A is also on.
void remove_contained_cubes(std::vector<WorkCube>& cubes) {
  for (const WorkCube& a : cubes) {
    for (WorkCube& b : cubes) {
      if (&a == &b || a.literals.size() > b.literals.size()) continue;
      if (&a > &b && a.literals == b.literals) continue;  // keep one copy
      if (!std::includes(b.literals.begin(), b.literals.end(),
                         a.literals.begin(), a.literals.end()))
        continue;
      for (std::size_t out = 0; out < b.outputs.size(); ++out)
        if (a.outputs[out]) b.outputs[out] = false;
    }
  }
  std::erase_if(cubes, [](const WorkCube& cube) {
    return std::none_of(cube.outputs.begin(), cube.outputs.end(),
                        [](bool on) { return on; });
  });
}

/// Greedy common-cube extraction; returns the divisor table (indexed by
/// id - 2*num_inputs).
std::vector<Divisor> extract_common_cubes(std::vector<WorkCube>& cubes,
                                          std::size_t num_inputs,
                                          std::size_t min_occurrences) {
  std::vector<Divisor> divisors;
  Literal next_id = static_cast<Literal>(2 * num_inputs);
  for (;;) {
    std::map<std::pair<Literal, Literal>, std::size_t> pair_count;
    for (const WorkCube& cube : cubes) {
      for (std::size_t i = 0; i < cube.literals.size(); ++i)
        for (std::size_t j = i + 1; j < cube.literals.size(); ++j)
          ++pair_count[{cube.literals[i], cube.literals[j]}];
    }
    std::pair<Literal, Literal> best{};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : pair_count) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < std::max<std::size_t>(min_occurrences, 2)) break;

    const Literal divisor_id = next_id++;
    divisors.push_back(Divisor{best.first, best.second});
    for (WorkCube& cube : cubes) {
      const bool has_a = std::binary_search(cube.literals.begin(),
                                            cube.literals.end(), best.first);
      const bool has_b = std::binary_search(cube.literals.begin(),
                                            cube.literals.end(), best.second);
      if (!has_a || !has_b) continue;
      std::erase(cube.literals, best.first);
      std::erase(cube.literals, best.second);
      cube.literals.insert(std::lower_bound(cube.literals.begin(),
                                            cube.literals.end(), divisor_id),
                           divisor_id);
    }
  }
  return divisors;
}

/// Builds a balanced gate tree over `signals` with bounded fan-in.
GateId build_tree(Circuit& circuit, GateType type,
                  std::vector<GateId> signals, std::size_t max_fanin,
                  std::size_t& name_counter, const char* prefix) {
  if (signals.size() == 1) return signals.front();
  while (signals.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i < signals.size(); i += max_fanin) {
      const std::size_t end = std::min(signals.size(), i + max_fanin);
      if (end - i == 1) {
        next.push_back(signals[i]);
        continue;
      }
      std::vector<GateId> group(signals.begin() + i, signals.begin() + end);
      next.push_back(circuit.add_gate(
          type, std::string(prefix) + std::to_string(name_counter++),
          std::move(group)));
    }
    signals = std::move(next);
  }
  return signals.front();
}

Circuit build_network(const Pla& pla, std::vector<WorkCube> cubes,
                      const std::vector<Divisor>& divisors,
                      std::size_t max_fanin) {
  Circuit circuit(pla.name);
  std::size_t name_counter = 0;

  // PIs and shared inverters.
  std::vector<GateId> literal_signal(2 * pla.num_inputs + divisors.size(),
                                     kNullGate);
  for (std::size_t var = 0; var < pla.num_inputs; ++var)
    literal_signal[2 * var] = circuit.add_input(pla.input_labels[var]);
  for (const WorkCube& cube : cubes)
    for (Literal lit : cube.literals)
      if (lit < 2 * pla.num_inputs && (lit & 1) &&
          literal_signal[lit] == kNullGate)
        literal_signal[lit] = circuit.add_gate(
            GateType::kNot, pla.input_labels[lit / 2] + "_n",
            {literal_signal[lit & ~1u]});
  // Divisors may also reference negative literals.
  for (const Divisor& divisor : divisors)
    for (Literal lit : {divisor.a, divisor.b})
      if (lit < 2 * pla.num_inputs && (lit & 1) &&
          literal_signal[lit] == kNullGate)
        literal_signal[lit] = circuit.add_gate(
            GateType::kNot, pla.input_labels[lit / 2] + "_n",
            {literal_signal[lit & ~1u]});

  // Divisor AND nodes (divisors only reference earlier ids, so one
  // forward pass suffices).
  for (std::size_t i = 0; i < divisors.size(); ++i) {
    const Literal id = static_cast<Literal>(2 * pla.num_inputs + i);
    literal_signal[id] = circuit.add_gate(
        GateType::kAnd, "d" + std::to_string(i),
        {literal_signal[divisors[i].a], literal_signal[divisors[i].b]});
  }

  // Product terms, shared across outputs when literal sets coincide.
  std::map<std::vector<Literal>, GateId> term_cache;
  std::vector<GateId> term_signal(cubes.size());
  for (std::size_t c = 0; c < cubes.size(); ++c) {
    const auto it = term_cache.find(cubes[c].literals);
    if (it != term_cache.end()) {
      term_signal[c] = it->second;
      continue;
    }
    std::vector<GateId> signals;
    signals.reserve(cubes[c].literals.size());
    for (Literal lit : cubes[c].literals)
      signals.push_back(literal_signal[lit]);
    const GateId gate = build_tree(circuit, GateType::kAnd, std::move(signals),
                                   max_fanin, name_counter, "a");
    term_cache.emplace(cubes[c].literals, gate);
    term_signal[c] = gate;
  }

  // Output OR trees.
  for (std::size_t out = 0; out < pla.num_outputs; ++out) {
    std::vector<GateId> signals;
    for (std::size_t c = 0; c < cubes.size(); ++c)
      if (cubes[c].outputs[out]) signals.push_back(term_signal[c]);
    if (signals.empty())
      throw std::invalid_argument("synth: output '" + pla.output_labels[out] +
                                  "' has an empty cover (constant 0)");
    // Deduplicate shared terms feeding the same OR.
    std::sort(signals.begin(), signals.end());
    signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
    const GateId driver =
        signals.size() == 1
            ? signals.front()
            : build_tree(circuit, GateType::kOr, std::move(signals), max_fanin,
                         name_counter, "o");
    circuit.add_output(pla.output_labels[out], driver);
  }
  circuit.finalize();
  return circuit;
}

}  // namespace

Circuit synthesize_multilevel(const Pla& pla, const SynthOptions& options) {
  auto cubes = to_work_cubes(pla);
  remove_contained_cubes(cubes);
  std::vector<Divisor> divisors;
  if (options.extract_common_cubes)
    divisors = extract_common_cubes(cubes, pla.num_inputs,
                                    options.min_pair_occurrences);
  return build_network(pla, std::move(cubes), divisors, options.max_fanin);
}

Circuit synthesize_two_level(const Pla& pla) {
  auto cubes = to_work_cubes(pla);
  return build_network(pla, std::move(cubes), {},
                       /*max_fanin=*/std::size_t{1} << 20);
}

}  // namespace rd
