#include "cache/eco_classify.h"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/heuristics.h"
#include "core/input_sort.h"
#include "netlist/cone_signature.h"
#include "paths/counting.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rd {

namespace {

/// Fixed tie-break seed: the per-cone sort must be a pure function of
/// the cone (same structure => same sort), which a shared Rng stream
/// across cones would destroy.
constexpr std::uint64_t kConeSortSeed = 1;

struct ConeRun {
  ClassifyResult result;
  bool sort_aborted = false;
  AbortReason sort_abort_reason = AbortReason::kNone;
};

/// Builds the cone's sort and classifies it.  `limit` is the kept-key
/// budget for this cone (0 = no key collection).
ConeRun classify_cone(const Circuit& cone, const EcoOptions& options,
                      std::uint64_t limit, EcoStats* stats) {
  ClassifyOptions run = options.base;
  run.collect_lead_counts = false;
  run.collect_paths_limit = limit;
  run.compiled = nullptr;

  ConeRun out;
  InputSort sort = InputSort::natural(cone);
  if (options.sort_spec == "fus") {
    run.criterion = Criterion::kFunctionalSensitizable;
    run.sort = nullptr;
  } else {
    Stopwatch watch;
    Rng tie_breaker(kConeSortSeed);
    if (options.sort_spec == "1") {
      sort = heuristic1_sort(cone, &tie_breaker);
    } else {  // "2" | "inverse"
      ClassifyResult fs_run;
      ClassifyResult nr_run;
      sort = heuristic2_sort(cone, &tie_breaker, &fs_run, &nr_run,
                             &options.base);
      stats->prerun_work += fs_run.work + nr_run.work;
      if (!fs_run.completed || !nr_run.completed) {
        out.sort_aborted = true;
        const ClassifyResult& bad = fs_run.completed ? nr_run : fs_run;
        out.sort_abort_reason = bad.abort_reason == AbortReason::kNone
                                    ? AbortReason::kWorkBudget
                                    : bad.abort_reason;
        stats->sort_seconds += watch.elapsed_seconds();
        return out;
      }
      if (options.sort_spec == "inverse") sort = sort.reversed();
    }
    stats->sort_seconds += watch.elapsed_seconds();
    run.criterion = Criterion::kInputSort;
    run.sort = &sort;
  }
  out.result = classify_paths(cone, run);
  return out;
}

ConeRecordData record_from_result(const ClassifyResult& result) {
  ConeRecordData data;
  data.kept_paths = result.kept_paths;
  data.total_logical = result.total_logical.to_decimal();
  data.work = result.work;
  data.implication = result.implication;
  data.keys_complete = result.kept_keys.size() == result.kept_paths;
  std::vector<LeadId> segment;
  for (const std::vector<std::uint32_t>& key : result.kept_keys) {
    segment.assign(key.begin(), key.end() - 1);
    data.keys.append(segment, key.back() != 0);
  }
  return data;
}

}  // namespace

EcoResult classify_eco(const Circuit& circuit, ConeCacheStore& store,
                       const EcoOptions& options) {
  if (options.sort_spec != "1" && options.sort_spec != "2" &&
      options.sort_spec != "inverse" && options.sort_spec != "fus")
    throw std::invalid_argument("classify_eco: unknown sort spec '" +
                                options.sort_spec + "'");
  if (options.base.collect_lead_counts)
    throw std::invalid_argument(
        "classify_eco: collect_lead_counts is not supported in eco mode");
  if (options.base.implications == ImplicationTier::kLearned)
    throw std::invalid_argument(
        "classify_eco: the learned implication tier is not supported in eco "
        "mode (learned kept sets would poison cached cone records)");
  if (options.base.sort != nullptr || options.base.compiled != nullptr ||
      options.base.closure != nullptr)
    throw std::invalid_argument(
        "classify_eco: base.sort/base.compiled/base.closure must be null "
        "(the driver builds per-cone sorts and closures)");

  Stopwatch watch;
  EcoResult out;
  ClassifyResult& total = out.classify;
  const std::uint64_t key_limit = options.base.collect_paths_limit;

  for (const GateId po : circuit.outputs()) {
    const ConeExtraction ex = extract_cone_canonical(circuit, po);
    const std::vector<std::uint8_t> canonical =
        cone_canonical_bytes(ex.cone, options.sort_spec);
    const std::uint64_t signature = cone_signature(canonical);
    ++out.stats.cones;

    const std::uint64_t remaining =
        key_limit == 0
            ? 0
            : key_limit - static_cast<std::uint64_t>(total.kept_keys.size());

    std::shared_ptr<const ConeRecord> record = store.find(signature, canonical);
    // A cached record must cover this run's key demand: either it
    // holds every survivor or at least as many leading keys as we
    // still need.  Anything less is a miss (and the fresh, richer
    // record replaces it).
    if (record != nullptr && remaining > 0 && !record->data.keys_complete &&
        record->data.keys.size() < remaining)
      record = nullptr;

    ConeRecordData fresh;
    if (record == nullptr) {
      ++out.stats.misses;
      const ConeRun run = classify_cone(ex.cone, options, remaining,
                                        &out.stats);
      if (run.sort_aborted) {
        total.completed = false;
        total.abort_reason = run.sort_abort_reason;
        break;
      }
      if (options.base.implications != ImplicationTier::kOff) {
        ++out.stats.closure_builds;
        out.stats.closure_build_seconds += run.result.closure.build_seconds;
        out.stats.closure.merge(run.result.closure);
        total.closure.merge(run.result.closure);
      }
      if (!run.result.completed) {
        total.kept_paths += run.result.kept_paths;
        total.work += run.result.work;
        total.implication.merge(run.result.implication);
        total.completed = false;
        total.abort_reason = run.result.abort_reason == AbortReason::kNone
                                 ? AbortReason::kWorkBudget
                                 : run.result.abort_reason;
        break;
      }
      fresh = record_from_result(run.result);
      store.put(signature, canonical, fresh);
      ++out.stats.stored;
    } else {
      ++out.stats.hits;
    }

    const ConeRecordData& data = record != nullptr ? record->data : fresh;
    total.kept_paths += data.kept_paths;
    total.work += data.work;
    total.implication.merge(data.implication);
    const std::uint64_t take =
        std::min<std::uint64_t>(remaining, data.keys.size());
    for (std::uint64_t i = 0; i < take; ++i) {
      std::vector<std::uint32_t> key = data.keys.key(i);
      for (std::size_t w = 0; w + 1 < key.size(); ++w)
        key[w] = ex.parent_lead[key[w]];
      total.kept_keys.push_back(std::move(key));
    }
  }

  // Whole-circuit structural total, abort or not — exactly what the
  // monolithic engines report.  On completed runs it provably equals
  // the sum of the per-cone record totals (every logical path ends at
  // exactly one PO); the tests pin that invariant.
  total.total_logical = PathCounts(circuit).total_logical();
  if (total.completed) {
    total.rd_paths = total.total_logical - BigUint(total.kept_paths);
    const double total_d = total.total_logical.to_double();
    const double rd_d = total.rd_paths.to_double();
    double percent = 0.0;
    if (total_d > 0) {
      percent = std::isfinite(total_d) && std::isfinite(rd_d)
                    ? 100.0 * rd_d / total_d
                    : 100.0;
    }
    total.rd_percent = std::isfinite(percent) ? percent : 0.0;
  }
  total.wall_seconds = watch.elapsed_seconds();
  return out;
}

}  // namespace rd
