// Corruption-tolerant persistent store of per-cone classification
// results (DESIGN.md §13).
//
// A ConeCacheStore maps a canonical cone encoding (see
// netlist/cone_signature.h) to the deterministic outputs of one
// completed classify run over that cone: kept-path count, exact
// logical-path total, work and implication counters, and (optionally)
// the leading kept-path keys in cone-local numbering, pooled in a
// PathKeyArena.  The eco driver (eco_classify.h) consults it per PO
// and reuses a record instead of reclassifying the cone.
//
// Lookup discipline: find() takes both the 64-bit signature and the
// full canonical bytes and returns a record only on *byte-exact*
// canonical equality — the hash locates candidates, it never decides.
// A hash collision is therefore a miss, never a wrong verdict.
//
// Persistence is crash-safe by construction: save() serializes the
// whole store to <dir>/cone_cache.rdc.tmp.<pid>, fsyncs, then
// atomically rename(2)s over <dir>/cone_cache.rdc (and fsyncs the
// directory), so a reader never observes a half-written cache.  Every
// record carries its own CRC32 frame and the file a versioned,
// CRC-protected header.  load() runs the recovery ladder over
// whatever it finds:
//
//   damage class                      typed counter       action
//   ------------------------------    ----------------    -----------------
//   stray tmp file (torn save)        torn_tmp            delete, continue
//   missing/garbled header            bad_header          quarantine file
//   format version skew               version_skew        quarantine file
//   file ends mid-record              truncated           keep prior records
//   record CRC mismatch               crc_mismatch        skip record
//   record fails to deserialize       malformed_record    skip record
//   same canonical key twice          duplicate_key       keep first
//
// "Quarantine" renames the damaged file to <file>.quarantined
// (counted in quarantined_files) so the evidence survives for
// debugging while the store restarts cold.  Nothing in the ladder
// throws — every outcome degrades to "reclassify that cone".
//
// Deterministic fault injection (ExecGuard-style, tests only):
// CacheFaultInjection arms save() to flip one bit of the serialized
// image, persist a truncated prefix, or SIGKILL the process mid-write
// — exercising the exact artifacts the ladder recovers from.
//
// Thread safety: every public method is safe to call concurrently
// (one mutex; records are immutable shared_ptrs after insertion).
// The serve daemon shares one store across all request threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "paths/prefix_tree.h"
#include "sim/implication.h"

namespace rd {

/// Deterministic outputs of one completed classify run over a cone.
struct ConeRecordData {
  std::uint64_t kept_paths = 0;
  std::string total_logical;  // exact decimal, BigUint::to_decimal()
  std::uint64_t work = 0;
  ImplicationStats implication;

  /// Kept-path keys in cone-local numbering (LogicalPath::key()
  /// encoding), first `keys.size()` survivors in deterministic DFS
  /// order.  keys_complete means *every* survivor is stored; otherwise
  /// the arena holds the prefix a collect_paths_limit run produced.
  bool keys_complete = false;
  PathKeyArena keys;
};

struct ConeRecord {
  std::uint64_t signature = 0;
  std::vector<std::uint8_t> canonical;
  ConeRecordData data;
  bool from_disk = false;  // loaded (vs produced this session)
};

/// Typed recovery ladder counters (see table above).
struct ConeCacheRecovery {
  std::uint64_t torn_tmp = 0;
  std::uint64_t bad_header = 0;
  std::uint64_t version_skew = 0;
  std::uint64_t truncated = 0;
  std::uint64_t crc_mismatch = 0;
  std::uint64_t malformed_record = 0;
  std::uint64_t duplicate_key = 0;
  std::uint64_t quarantined_files = 0;

  std::uint64_t total() const {
    return torn_tmp + bad_header + version_skew + truncated + crc_mismatch +
           malformed_record + duplicate_key + quarantined_files;
  }
  void merge(const ConeCacheRecovery& other);
};

/// Deterministic save-time fault injection (tests/bench only).
struct CacheFaultInjection {
  /// >0: persist only the first N bytes of the image, then rename as
  /// usual — the torn-but-renamed artifact of a non-atomic filesystem.
  std::uint64_t truncate_after_bytes = 0;

  /// >0: XOR bit (N-1) mod image-bits of the serialized image before
  /// writing — a single-bit medium error.
  std::uint64_t flip_bit = 0;

  /// >0: raise SIGKILL after writing N bytes of the temp file — a real
  /// crash mid-save, leaving a stray tmp and the previous cache intact.
  std::uint64_t crash_after_bytes = 0;
};

class ConeCacheStore {
 public:
  /// `max_records` bounds the store (and thus the file); putting past
  /// the cap evicts never-used loaded records first, then the oldest.
  explicit ConeCacheStore(std::size_t max_records = 1 << 16);

  ConeCacheStore(const ConeCacheStore&) = delete;
  ConeCacheStore& operator=(const ConeCacheStore&) = delete;

  /// Byte-exact lookup; marks the record used.  Null on miss.
  std::shared_ptr<const ConeRecord> find(
      std::uint64_t signature, const std::vector<std::uint8_t>& canonical);

  /// Inserts or replaces the record for `canonical`.
  void put(std::uint64_t signature, std::vector<std::uint8_t> canonical,
           ConeRecordData data);

  /// Merges the on-disk cache under `dir` into the store, running the
  /// recovery ladder (never throws on damaged input; I/O errors on an
  /// *existing healthy* file surface as std::runtime_error).  Returns
  /// this load's recovery counters; they also accumulate into stats().
  ConeCacheRecovery load(const std::string& dir);

  /// Atomically persists the store to `dir` (see file comment).
  /// Throws std::runtime_error on I/O failure.
  void save(const std::string& dir,
            const CacheFaultInjection& inject = {}) const;

  struct Stats {
    std::uint64_t records = 0;       // resident records
    std::uint64_t hits = 0;          // find() matches
    std::uint64_t misses = 0;        // find() misses
    std::uint64_t loaded = 0;        // records accepted by load()
    std::uint64_t stale_loaded = 0;  // loaded but never matched — the
                                     // signature no longer occurs
                                     // (e.g. edited away)
    std::uint64_t evictions = 0;     // cap-driven evictions
    ConeCacheRecovery recovery;      // accumulated over all load()s
  };
  Stats stats() const;

  /// The cache file this store persists to under `dir`.
  static std::string cache_file(const std::string& dir);

 private:
  struct Slot {
    std::shared_ptr<ConeRecord> record;
    bool used = false;       // matched by find() this session
    std::uint64_t order = 0; // insertion order, for eviction
  };

  void evict_to_cap_locked();

  mutable std::mutex mutex_;
  std::size_t max_records_;
  std::uint64_t next_order_ = 0;
  // signature -> slots (chained on the rare hash collision).
  std::unordered_map<std::uint64_t, std::vector<Slot>> slots_;
  mutable Stats stats_;
};

}  // namespace rd
