#include "cache/cone_cache.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/crc32.h"

namespace rd {

namespace {

constexpr char kMagic[8] = {'R', 'D', 'C', 'C', 'A', 'C', 'H', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x52434452u;  // "RDCR"
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 4;  // magic, ver, count, crc
constexpr std::size_t kFrameBytes = 4 + 4 + 4;       // magic, len, crc
// A record larger than this is damage, not data (the whole store is
// capped far below it) — bounds the skip distance a corrupt length
// field can command.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

const char kFileName[] = "cone_cache.rdc";
const char kTmpPrefix[] = "cone_cache.rdc.tmp";

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/// Bounds-checked little-endian reader; any overrun latches fail().
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool fail() const { return fail_; }
  bool at_end() const { return pos_ == size_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    return v;
  }
  const std::uint8_t* bytes(std::size_t n) {
    if (!need(n)) return nullptr;
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

 private:
  bool need(std::size_t n) {
    if (size_ - pos_ < n) {
      fail_ = true;
      pos_ = size_;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

std::vector<std::uint8_t> serialize_record(const ConeRecord& record) {
  std::vector<std::uint8_t> out;
  append_u64(out, record.signature);
  append_u32(out, static_cast<std::uint32_t>(record.canonical.size()));
  out.insert(out.end(), record.canonical.begin(), record.canonical.end());
  const ConeRecordData& data = record.data;
  append_u64(out, data.kept_paths);
  append_u64(out, data.work);
  append_u64(out, data.implication.assignments);
  append_u64(out, data.implication.propagations);
  append_u64(out, data.implication.conflicts);
  append_u64(out, data.implication.backward);
  append_u32(out, static_cast<std::uint32_t>(data.total_logical.size()));
  out.insert(out.end(), data.total_logical.begin(), data.total_logical.end());
  append_u8(out, data.keys_complete ? 1 : 0);
  append_u64(out, data.keys.size());
  for (std::size_t i = 0; i < data.keys.size(); ++i) {
    const std::vector<std::uint32_t> key = data.keys.key(i);
    append_u32(out, static_cast<std::uint32_t>(key.size()));
    for (const std::uint32_t word : key) append_u32(out, word);
  }
  return out;
}

/// Null on any structural defect (the caller counts malformed_record).
std::shared_ptr<ConeRecord> deserialize_record(const std::uint8_t* payload,
                                               std::size_t size) {
  Reader in(payload, size);
  auto record = std::make_shared<ConeRecord>();
  record->signature = in.u64();
  const std::uint32_t canonical_len = in.u32();
  const std::uint8_t* canonical = in.bytes(canonical_len);
  if (canonical != nullptr)
    record->canonical.assign(canonical, canonical + canonical_len);
  ConeRecordData& data = record->data;
  data.kept_paths = in.u64();
  data.work = in.u64();
  data.implication.assignments = in.u64();
  data.implication.propagations = in.u64();
  data.implication.conflicts = in.u64();
  data.implication.backward = in.u64();
  const std::uint32_t total_len = in.u32();
  const std::uint8_t* total = in.bytes(total_len);
  if (total != nullptr)
    data.total_logical.assign(reinterpret_cast<const char*>(total), total_len);
  data.keys_complete = in.u8() != 0;
  const std::uint64_t num_keys = in.u64();
  std::vector<LeadId> segment;
  for (std::uint64_t i = 0; i < num_keys && !in.fail(); ++i) {
    const std::uint32_t len = in.u32();
    if (len == 0) return nullptr;  // a key is at least its final bit
    segment.clear();
    for (std::uint32_t w = 0; w + 1 < len; ++w) segment.push_back(in.u32());
    const std::uint32_t final_word = in.u32();
    if (in.fail()) return nullptr;
    data.keys.append(segment, final_word != 0);
  }
  if (in.fail() || !in.at_end()) return nullptr;
  // Semantic sanity: the decimal total must be non-empty digits, and a
  // complete key set must agree with the kept-path count.
  if (data.total_logical.empty()) return nullptr;
  for (const char c : data.total_logical)
    if (c < '0' || c > '9') return nullptr;
  if (data.keys_complete && data.keys.size() != data.kept_paths)
    return nullptr;
  if (record->canonical.empty()) return nullptr;
  return record;
}

/// Reads a whole file; false if it cannot be opened/read.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  out->clear();
  std::uint8_t buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
    out->insert(out->end(), buffer, buffer + n);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

}  // namespace

void ConeCacheRecovery::merge(const ConeCacheRecovery& other) {
  torn_tmp += other.torn_tmp;
  bad_header += other.bad_header;
  version_skew += other.version_skew;
  truncated += other.truncated;
  crc_mismatch += other.crc_mismatch;
  malformed_record += other.malformed_record;
  duplicate_key += other.duplicate_key;
  quarantined_files += other.quarantined_files;
}

ConeCacheStore::ConeCacheStore(std::size_t max_records)
    : max_records_(std::max<std::size_t>(1, max_records)) {}

std::string ConeCacheStore::cache_file(const std::string& dir) {
  return dir + "/" + kFileName;
}

std::shared_ptr<const ConeRecord> ConeCacheStore::find(
    std::uint64_t signature, const std::vector<std::uint8_t>& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(signature);
  if (it != slots_.end()) {
    for (Slot& slot : it->second) {
      if (slot.record->canonical == canonical) {
        slot.used = true;
        ++stats_.hits;
        return slot.record;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void ConeCacheStore::put(std::uint64_t signature,
                         std::vector<std::uint8_t> canonical,
                         ConeRecordData data) {
  auto record = std::make_shared<ConeRecord>();
  record->signature = signature;
  record->canonical = std::move(canonical);
  record->data = std::move(data);

  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Slot>& chain = slots_[signature];
  for (Slot& slot : chain) {
    if (slot.record->canonical == record->canonical) {
      slot.record = std::move(record);
      slot.used = true;
      return;
    }
  }
  Slot slot;
  slot.record = std::move(record);
  slot.used = true;
  slot.order = next_order_++;
  chain.push_back(std::move(slot));
  ++stats_.records;
  evict_to_cap_locked();
}

void ConeCacheStore::evict_to_cap_locked() {
  while (stats_.records > max_records_) {
    // Victim: never-used disk records first, then oldest overall.
    std::uint64_t best_sig = 0;
    std::size_t best_index = 0;
    int best_class = 3;
    std::uint64_t best_order = 0;
    for (const auto& [sig, chain] : slots_) {
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const Slot& slot = chain[i];
        const int cls = (slot.record->from_disk && !slot.used) ? 0 : 1;
        if (cls < best_class ||
            (cls == best_class && slot.order < best_order)) {
          best_class = cls;
          best_order = slot.order;
          best_sig = sig;
          best_index = i;
        }
      }
    }
    auto it = slots_.find(best_sig);
    it->second.erase(it->second.begin() + best_index);
    if (it->second.empty()) slots_.erase(it);
    --stats_.records;
    ++stats_.evictions;
  }
}

ConeCacheRecovery ConeCacheStore::load(const std::string& dir) {
  ConeCacheRecovery recovery;

  // Stray temp files are the footprint of a save that died mid-write:
  // typed, then removed (the previous committed cache is intact).
  if (DIR* scan = ::opendir(dir.c_str())) {
    std::vector<std::string> stray;
    while (const dirent* entry = ::readdir(scan)) {
      if (std::strncmp(entry->d_name, kTmpPrefix, sizeof kTmpPrefix - 1) == 0)
        stray.push_back(dir + "/" + entry->d_name);
    }
    ::closedir(scan);
    for (const std::string& path : stray) {
      ++recovery.torn_tmp;
      ::unlink(path.c_str());
    }
  }

  const std::string path = cache_file(dir);
  std::vector<std::uint8_t> image;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    // No cache yet: a cold start, not damage.
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.recovery.merge(recovery);
    return recovery;
  }
  const auto quarantine = [&] {
    if (::rename(path.c_str(), (path + ".quarantined").c_str()) == 0)
      ++recovery.quarantined_files;
    else
      ::unlink(path.c_str());
  };
  if (!read_file(path, &image)) {
    ++recovery.bad_header;
    quarantine();
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.recovery.merge(recovery);
    return recovery;
  }

  // Header ladder: magic, then version, then header CRC.
  bool header_ok = false;
  std::uint32_t claimed_records = 0;
  if (image.size() < kHeaderBytes ||
      std::memcmp(image.data(), kMagic, sizeof kMagic) != 0) {
    ++recovery.bad_header;
  } else {
    Reader header(image.data() + 8, kHeaderBytes - 8);
    const std::uint32_t version = header.u32();
    claimed_records = header.u32();
    const std::uint32_t header_crc = header.u32();
    if (crc32(image.data(), kHeaderBytes - 4) != header_crc) {
      ++recovery.bad_header;
    } else if (version != kFormatVersion) {
      ++recovery.version_skew;
    } else {
      header_ok = true;
    }
  }
  if (!header_ok) {
    quarantine();
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.recovery.merge(recovery);
    return recovery;
  }

  // Record frames.  Per-record damage skips that record; running off
  // the end of the image (or finishing with fewer records than the
  // header promised) is typed as truncation.
  std::vector<std::shared_ptr<ConeRecord>> accepted;
  std::size_t pos = kHeaderBytes;
  std::uint32_t parsed = 0;
  bool framing_lost = false;
  while (pos < image.size() && parsed < claimed_records && !framing_lost) {
    if (image.size() - pos < kFrameBytes) break;  // ends mid-frame
    Reader frame(image.data() + pos, kFrameBytes);
    const std::uint32_t magic = frame.u32();
    const std::uint32_t payload_len = frame.u32();
    const std::uint32_t payload_crc = frame.u32();
    if (magic != kRecordMagic || payload_len > kMaxPayloadBytes) {
      // Framing lost: nothing downstream can be trusted.
      ++recovery.malformed_record;
      framing_lost = true;
      break;
    }
    pos += kFrameBytes;
    if (image.size() - pos < payload_len) break;  // ends mid-payload
    const std::uint8_t* payload = image.data() + pos;
    pos += payload_len;
    ++parsed;
    if (crc32(payload, payload_len) != payload_crc) {
      ++recovery.crc_mismatch;
      continue;
    }
    std::shared_ptr<ConeRecord> record =
        deserialize_record(payload, payload_len);
    if (record == nullptr) {
      ++recovery.malformed_record;
      continue;
    }
    record->from_disk = true;
    accepted.push_back(std::move(record));
  }
  // Fewer whole records than the header promised — the file was cut
  // short (unless the framing itself was the casualty, typed above).
  if (!framing_lost && parsed < claimed_records) ++recovery.truncated;

  std::lock_guard<std::mutex> lock(mutex_);
  for (std::shared_ptr<ConeRecord>& record : accepted) {
    std::vector<Slot>& chain = slots_[record->signature];
    bool duplicate = false;
    for (const Slot& slot : chain) {
      if (slot.record->canonical == record->canonical) {
        // Within one file this is damage (the writer never emits a key
        // twice); against a resident record it is an ordinary refresh
        // race and the resident, newer result wins silently.
        if (slot.record->from_disk) ++recovery.duplicate_key;
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    Slot slot;
    slot.record = std::move(record);
    slot.order = next_order_++;
    chain.push_back(std::move(slot));
    ++stats_.records;
    ++stats_.loaded;
  }
  evict_to_cap_locked();
  stats_.recovery.merge(recovery);
  return recovery;
}

void ConeCacheStore::save(const std::string& dir,
                          const CacheFaultInjection& inject) const {
  std::vector<std::vector<std::uint8_t>> payloads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Slot*> ordered;
    ordered.reserve(stats_.records);
    for (const auto& [sig, chain] : slots_)
      for (const Slot& slot : chain) ordered.push_back(&slot);
    std::sort(ordered.begin(), ordered.end(),
              [](const Slot* a, const Slot* b) { return a->order < b->order; });
    payloads.reserve(ordered.size());
    for (const Slot* slot : ordered)
      payloads.push_back(serialize_record(*slot->record));
  }

  std::vector<std::uint8_t> image;
  image.insert(image.end(), kMagic, kMagic + sizeof kMagic);
  append_u32(image, kFormatVersion);
  append_u32(image, static_cast<std::uint32_t>(payloads.size()));
  append_u32(image, crc32(image.data(), image.size()));
  for (const std::vector<std::uint8_t>& payload : payloads) {
    append_u32(image, kRecordMagic);
    append_u32(image, static_cast<std::uint32_t>(payload.size()));
    append_u32(image, crc32(payload.data(), payload.size()));
    image.insert(image.end(), payload.begin(), payload.end());
  }

  if (inject.flip_bit != 0 && !image.empty()) {
    const std::uint64_t bit = (inject.flip_bit - 1) % (image.size() * 8);
    image[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  std::size_t persist_bytes = image.size();
  if (inject.truncate_after_bytes != 0)
    persist_bytes = std::min<std::size_t>(persist_bytes,
                                          inject.truncate_after_bytes);

  const std::string tmp =
      dir + "/" + kTmpPrefix + "." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw std::runtime_error("cone cache: cannot create " + tmp + ": " +
                             std::strerror(errno));
  const auto write_all = [&](const std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::write(fd, data + done, size - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw std::runtime_error("cone cache: write to " + tmp + " failed: " +
                                 std::strerror(errno));
      }
      done += static_cast<std::size_t>(n);
    }
  };
  if (inject.crash_after_bytes != 0) {
    // A real crash mid-save: persist a prefix of the temp file, then
    // die without rename — the committed cache must stay untouched and
    // the stray tmp must be typed as torn_tmp on the next load.
    write_all(image.data(),
              std::min<std::size_t>(image.size(), inject.crash_after_bytes));
    ::fsync(fd);
    ::raise(SIGKILL);
  }
  write_all(image.data(), persist_bytes);
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("cone cache: fsync of " + tmp + " failed");
  }
  const std::string path = cache_file(dir);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("cone cache: rename to " + path + " failed: " +
                             std::strerror(errno));
  }
  // Make the rename itself durable.
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

ConeCacheStore::Stats ConeCacheStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.stale_loaded = 0;
  for (const auto& [sig, chain] : slots_)
    for (const Slot& slot : chain)
      if (slot.record->from_disk && !slot.used) ++out.stale_loaded;
  return out;
}

}  // namespace rd
