// Incremental (ECO) reclassification: per-PO cone decomposition over a
// ConeCacheStore (DESIGN.md §13).
//
// Soundness of the decomposition: every logical path ends at exactly
// one primary output, and extract_cone_canonical preserves all paths
// to that output, so summing per-cone results reproduces the
// whole-circuit totals exactly.  Conflicts found by the classifier's
// local implications are confined to the path's own fan-in cone —
// backward reasoning never leaves it (the cone is transitively closed
// under fan-ins) and forward propagation outside it evaluates gates
// functionally, which cannot contradict itself — so per-cone verdicts
// equal whole-circuit verdicts path by path.  What differs from a
// whole-circuit run is observability (propagation counters include
// out-of-cone gates there) and, for the sort heuristics, *where* the
// sort is computed: eco builds each cone's sort on the cone itself
// with a fixed tie-break seed, making every cone's result a pure
// function of (cone structure, sort spec) — the property the cache
// key relies on.  A whole-circuit heuristic sort would be perturbed
// everywhere by any edit, invalidating every cone.
//
// The determinism contract is therefore *within the mode*: two eco
// runs of the same circuit and options produce bit-identical
// deterministic fields (verdicts, kept-path keys, work, implication
// counters) regardless of thread count, lane width, and — the point —
// of which cones were served from cache.  The differential tests pin
// warm == cold after edits; the fus criterion, whose conditions are
// sort-free, is additionally pinned against the whole-circuit engine.
//
// Not supported in eco mode: collect_lead_counts (per-lead tallies are
// a whole-circuit observability feature) and the kLearned implication
// tier — learned probing shrinks kept sets, so a record computed under
// it would poison the cone cache for every non-learned client of the
// same cone signature; classify_eco throws std::invalid_argument for
// either.  The kClosure tier is result-identical to kOff and composes
// freely (each reclassified cone builds its own closure).  work_limit
// applies per cone.
#pragma once

#include <string>

#include "cache/cone_cache.h"
#include "core/classify.h"
#include "netlist/circuit.h"

namespace rd {

struct EcoOptions {
  /// Per-cone sort recipe: "1" | "2" | "inverse" | "fus".
  std::string sort_spec = "2";

  /// Thread/lane/work/guard/collect_paths_limit knobs, applied per
  /// cone.  criterion/sort/compiled/collect_lead_counts are managed by
  /// the driver and must be left at their defaults.
  ClassifyOptions base;
};

struct EcoStats {
  std::uint64_t cones = 0;   // POs processed (== circuit outputs unless
                             // the run aborted mid-sweep)
  std::uint64_t hits = 0;    // cones served from the store
  std::uint64_t misses = 0;  // cones reclassified
  std::uint64_t stored = 0;  // fresh records put this run

  /// Sort-construction observability over the reclassified cones
  /// (cached cones pay neither), mirroring RdIdentification.
  double sort_seconds = 0.0;
  std::uint64_t prerun_work = 0;

  /// Static-closure observability over the reclassified cones (cached
  /// cones pay no closure work; base.implications == kOff leaves every
  /// field zero).  closure_builds counts per-cone builds; the merged
  /// ClosureStats carries their counters (build fields reflect the
  /// largest cone's closure — see ClosureStats::merge).
  std::uint64_t closure_builds = 0;
  double closure_build_seconds = 0.0;
  ClosureStats closure;
};

struct EcoResult {
  /// Aggregated over cones in primary-output order; deterministic
  /// fields are bit-identical for every thread count and cache state.
  ClassifyResult classify;
  EcoStats stats;
};

/// Classifies `circuit` cone by cone through `store`.  The store is
/// only ever fed records from *completed* cone runs; an abort (guard
/// trip, per-cone work_limit) stops the sweep with the typed reason
/// and partial sums, exactly like the whole-circuit engines.
EcoResult classify_eco(const Circuit& circuit, ConeCacheStore& store,
                       const EcoOptions& options);

}  // namespace rd
