// Structural Verilog netlist writer.
//
// Emits a gate-level module using Verilog primitive gates (and, or,
// nand, nor, not, buf), so generated benchmarks and simplified
// leaf-dags can be inspected with standard EDA tooling.  Write-only:
// the library's native interchange format is .bench.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace rd {

/// Serializes a finalized circuit as a structural Verilog module.
/// Signal names are sanitized to Verilog identifiers (non-alphanumeric
/// characters become '_', a leading digit gets an 'n' prefix); name
/// collisions after sanitization are disambiguated with the gate id.
void write_verilog(std::ostream& out, const Circuit& circuit,
                   const std::string& module_name = {});

std::string write_verilog_string(const Circuit& circuit,
                                 const std::string& module_name = {});

}  // namespace rd
