// Structural Verilog netlist reader/writer.
//
// The writer emits a gate-level module using Verilog primitive gates
// (and, or, nand, nor, not, buf), so generated benchmarks and
// simplified leaf-dags can be inspected with standard EDA tooling.
// The reader accepts the same structural subset back: one module with
// input/output/wire declarations and primitive-gate instances, with
// // line and /* block */ comments.  Every parse error names the
// source line ("verilog line N: ...") and is thrown as
// std::runtime_error; malformed input never escapes as a bare
// standard-library exception.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace rd {

/// Serializes a finalized circuit as a structural Verilog module.
/// Signal names are sanitized to Verilog identifiers (non-alphanumeric
/// characters become '_', a leading digit gets an 'n' prefix); name
/// collisions after sanitization are disambiguated with the gate id.
void write_verilog(std::ostream& out, const Circuit& circuit,
                   const std::string& module_name = {});

std::string write_verilog_string(const Circuit& circuit,
                                 const std::string& module_name = {});

/// Parses one structural-subset Verilog module into a finalized
/// Circuit.  Instances may appear in any order (use-before-def is
/// resolved topologically, like the .bench reader); each declared
/// output port becomes a PO, and a `buf` alias whose output only
/// feeds an output port (the pattern write_verilog emits) is collapsed
/// back into a plain PO marker instead of a logic gate.  Throws
/// std::runtime_error with a "verilog line N:" prefix on undeclared or
/// duplicate signals, unknown primitives, missing semicolons,
/// truncated modules, undriven (dangling) fanins, and cycles.
Circuit read_verilog(std::istream& in, std::string circuit_name = {});

Circuit read_verilog_string(const std::string& text,
                            std::string circuit_name = {});

/// Reads from a file, deriving the circuit name from the file name
/// (basename, ".v" stripped) like read_bench_file.
Circuit read_verilog_file(const std::string& path);

}  // namespace rd
