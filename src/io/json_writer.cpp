#include "io/json_writer.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rd {

JsonValue JsonValue::boolean(bool value) {
  JsonValue json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

JsonValue JsonValue::number(double value) {
  if (!std::isfinite(value)) return null();
  JsonValue json;
  json.kind_ = Kind::kNumber;
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  json.scalar_ = buffer;
  return json;
}

JsonValue JsonValue::number(std::uint64_t value) {
  JsonValue json;
  json.kind_ = Kind::kNumber;
  json.scalar_ = std::to_string(value);
  return json;
}

JsonValue JsonValue::number(std::int64_t value) {
  JsonValue json;
  json.kind_ = Kind::kNumber;
  json.scalar_ = std::to_string(value);
  return json;
}

JsonValue JsonValue::number_token(std::string token) {
  JsonValue json;
  json.kind_ = Kind::kNumber;
  json.scalar_ = std::move(token);
  return json;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue json;
  json.kind_ = Kind::kString;
  json.scalar_ = std::move(value);
  return json;
}

JsonValue JsonValue::array() {
  JsonValue json;
  json.kind_ = Kind::kArray;
  return json;
}

JsonValue JsonValue::object() {
  JsonValue json;
  json.kind_ = Kind::kObject;
  return json;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t JsonValue::as_uint64() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  if (scalar_.empty() || scalar_[0] == '-' ||
      scalar_.find_first_of(".eE") != std::string::npos)
    throw std::runtime_error("json: number is not an unsigned integer: " +
                             scalar_);
  // A validated number token can still exceed 64 bits (BigUint path
  // totals are emitted verbatim); range-check instead of letting
  // std::stoull throw an out_of_range that no validation path expects.
  std::uint64_t value = 0;
  const char* const begin = scalar_.data();
  const char* const end = begin + scalar_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range)
    throw std::runtime_error("json: number does not fit in 64 bits: " +
                             scalar_);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error("json: number is not an unsigned integer: " +
                             scalar_);
  return value;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  kind_error("an array or object");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  if (kind_ != Kind::kArray) kind_error("an array");
  if (index >= items_.size()) throw std::runtime_error("json: index range");
  return items_[index];
}

JsonValue& JsonValue::append(JsonValue value) {
  if (kind_ != Kind::kArray) kind_error("an array");
  items_.push_back(std::move(value));
  return items_.back();
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value) {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (const auto& member : members_)
    if (member.first == key) return &member.second;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return members_;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::write(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += scalar_; return;
    case Kind::kString: out += json_escape(scalar_); return;
    case Kind::kArray:
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += inner_pad;
        items_[i].write(out, indent + 1);
        if (i + 1 < items_.size()) out += ",";
        out += "\n";
      }
      out += pad;
      out += "]";
      return;
    case Kind::kObject:
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        out += json_escape(members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent + 1);
        if (i + 1 < members_.size()) out += ",";
        out += "\n";
      }
      out += pad;
      out += "}";
      return;
  }
}

std::string JsonValue::to_string() const {
  std::string out;
  write(out, 0);
  out += "\n";
  return out;
}

namespace {

/// Recursive-descent parser over a raw character range.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (position_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < position_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::runtime_error("json line " + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message);
  }

  void skip_whitespace() {
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++position_;
    }
  }

  char peek() {
    skip_whitespace();
    if (position_ >= text_.size()) fail("unexpected end of input");
    return text_[position_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++position_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(position_, literal.size()) != literal) return false;
    position_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': value = parse_object(); break;
      case '[': value = parse_array(); break;
      case '"': value = JsonValue::string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value = JsonValue::boolean(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value = JsonValue::boolean(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: value = parse_number(); break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue object = JsonValue::object();
    if (peek() == '}') {
      ++position_;
      return object;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      object.set(key, parse_value());
      const char next = peek();
      ++position_;
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue array = JsonValue::array();
    if (peek() == ']') {
      ++position_;
      return array;
    }
    for (;;) {
      array.append(parse_value());
      const char next = peek();
      ++position_;
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (position_ >= text_.size()) fail("unterminated string");
      const char c = text_[position_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (position_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[position_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (position_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[position_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: a low surrogate must follow immediately.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = position_;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    const std::size_t digits_start = position_;
    while (position_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[position_])))
      ++position_;
    if (position_ == digits_start) fail("expected a value");
    // Leading zeros are invalid JSON ("01"), a lone zero is fine.
    if (text_[digits_start] == '0' && position_ - digits_start > 1)
      fail("number has leading zero");
    if (position_ < text_.size() && text_[position_] == '.') {
      ++position_;
      const std::size_t fraction_start = position_;
      while (position_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[position_])))
        ++position_;
      if (position_ == fraction_start) fail("bad number fraction");
    }
    if (position_ < text_.size() &&
        (text_[position_] == 'e' || text_[position_] == 'E')) {
      ++position_;
      if (position_ < text_.size() &&
          (text_[position_] == '+' || text_[position_] == '-'))
        ++position_;
      const std::size_t exponent_start = position_;
      while (position_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[position_])))
        ++position_;
      if (position_ == exponent_start) fail("bad number exponent");
    }
    // Keep the validated token verbatim (exactness for 64-bit counts).
    return JsonValue::number_token(
        std::string(text_.substr(start, position_ - start)));
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  std::size_t position_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace rd
