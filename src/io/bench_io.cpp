#include "io/bench_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.h"

namespace rd {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("bench line " + std::to_string(line_no) + ": " +
                           message);
}

GateType parse_gate_type(std::string_view token, std::size_t line_no) {
  const std::string lowered = to_lower(token);
  if (lowered == "and") return GateType::kAnd;
  if (lowered == "or") return GateType::kOr;
  if (lowered == "nand") return GateType::kNand;
  if (lowered == "nor") return GateType::kNor;
  if (lowered == "not" || lowered == "inv") return GateType::kNot;
  if (lowered == "buf" || lowered == "buff") return GateType::kBuf;
  fail(line_no, "unknown gate type '" + std::string(token) + "'");
}

}  // namespace

Circuit read_bench(std::istream& in, std::string circuit_name) {
  // First pass: collect statements, since .bench allows use-before-def.
  struct GateStatement {
    std::string name;
    GateType type;
    std::vector<std::string> fanins;
    std::size_t line_no;
  };
  struct IoStatement {
    std::string name;
    std::size_t line_no;
  };
  std::vector<IoStatement> input_names;
  std::vector<IoStatement> output_names;
  std::vector<GateStatement> statements;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;

    const auto open = text.find('(');
    const auto equals = text.find('=');
    if (equals == std::string_view::npos) {
      // INPUT(name) or OUTPUT(name)
      const auto close = text.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open)
        fail(line_no, "expected INPUT(name) or OUTPUT(name)");
      const std::string keyword = to_lower(trim(text.substr(0, open)));
      const std::string name{trim(text.substr(open + 1, close - open - 1))};
      if (name.empty()) fail(line_no, "empty signal name");
      if (keyword == "input")
        input_names.push_back(IoStatement{name, line_no});
      else if (keyword == "output")
        output_names.push_back(IoStatement{name, line_no});
      else
        fail(line_no, "unknown directive '" + keyword + "'");
      continue;
    }

    // name = TYPE(args)
    const std::string name{trim(text.substr(0, equals))};
    std::string_view rhs = trim(text.substr(equals + 1));
    const auto rhs_open = rhs.find('(');
    const auto rhs_close = rhs.rfind(')');
    if (name.empty() || rhs_open == std::string_view::npos ||
        rhs_close == std::string_view::npos || rhs_close < rhs_open)
      fail(line_no, "expected name = TYPE(a, b, ...)");
    const GateType type = parse_gate_type(trim(rhs.substr(0, rhs_open)), line_no);
    std::vector<std::string> fanins;
    for (auto& piece :
         split(rhs.substr(rhs_open + 1, rhs_close - rhs_open - 1), ',')) {
      if (piece.empty()) fail(line_no, "empty fanin name");
      fanins.push_back(std::move(piece));
    }
    if ((type == GateType::kNot || type == GateType::kBuf) &&
        fanins.size() != 1)
      fail(line_no, "NOT/BUFF takes exactly one fanin, got " +
                        std::to_string(fanins.size()));
    statements.push_back(GateStatement{name, type, std::move(fanins), line_no});
  }

  Circuit circuit(std::move(circuit_name));
  std::unordered_map<std::string, GateId> by_name;
  for (const IoStatement& input : input_names) {
    if (!by_name.emplace(input.name, circuit.add_input(input.name)).second)
      fail(input.line_no, "duplicate signal '" + input.name + "'");
  }

  // Topologically order gate statements (use-before-def is allowed).
  std::unordered_map<std::string, std::size_t> statement_of;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    if (by_name.count(statements[i].name) || statement_of.count(statements[i].name))
      fail(statements[i].line_no,
           "duplicate signal '" + statements[i].name + "'");
    statement_of.emplace(statements[i].name, i);
  }
  std::vector<std::uint8_t> state(statements.size(), 0);  // 0 new, 1 open, 2 done
  // Iterative DFS to avoid deep recursion on long chains.
  for (std::size_t root = 0; root < statements.size(); ++root) {
    if (state[root] == 2) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [index, next_fanin] = stack.back();
      const GateStatement& statement = statements[index];
      if (next_fanin < statement.fanins.size()) {
        const std::string& fanin_name = statement.fanins[next_fanin++];
        if (by_name.count(fanin_name)) continue;
        const auto it = statement_of.find(fanin_name);
        if (it == statement_of.end())
          fail(statement.line_no, "undefined signal '" + fanin_name + "'");
        if (state[it->second] == 1)
          fail(statement.line_no, "combinational cycle through '" + fanin_name +
                                      "'");
        if (state[it->second] == 0) {
          state[it->second] = 1;
          stack.emplace_back(it->second, 0);
        }
        continue;
      }
      std::vector<GateId> fanins;
      fanins.reserve(statement.fanins.size());
      for (const std::string& fanin_name : statement.fanins)
        fanins.push_back(by_name.at(fanin_name));
      by_name.emplace(statement.name,
                      circuit.add_gate(statement.type, statement.name,
                                       std::move(fanins)));
      state[index] = 2;
      stack.pop_back();
    }
  }

  for (const IoStatement& output : output_names) {
    const auto it = by_name.find(output.name);
    if (it == by_name.end())
      fail(output.line_no, "OUTPUT of undefined signal '" + output.name + "'");
    circuit.add_output(output.name, it->second);
  }
  circuit.finalize();
  return circuit;
}

Circuit read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return read_bench(in, std::move(circuit_name));
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  // Derive a circuit name from the file name.
  auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  if (base.size() > 6 && base.substr(base.size() - 6) == ".bench")
    base.resize(base.size() - 6);
  return read_bench(in, std::move(base));
}

void write_bench(std::ostream& out, const Circuit& circuit) {
  out << "# " << (circuit.name().empty() ? "circuit" : circuit.name()) << "\n";
  for (GateId id : circuit.inputs())
    out << "INPUT(" << circuit.gate(id).name << ")\n";
  // .bench names outputs by signal; when a PO marker carries its own
  // name, alias it through a buffer so the name survives a round trip.
  std::vector<GateId> aliased_pos;
  for (GateId id : circuit.outputs()) {
    const std::string& driver_name =
        circuit.gate(circuit.gate(id).fanins.front()).name;
    const std::string& po_name = circuit.gate(id).name;
    if (po_name.empty() || po_name == driver_name) {
      out << "OUTPUT(" << driver_name << ")\n";
    } else {
      out << "OUTPUT(" << po_name << ")\n";
      aliased_pos.push_back(id);
    }
  }
  for (GateId id : aliased_pos)
    out << circuit.gate(id).name << " = BUFF("
        << circuit.gate(circuit.gate(id).fanins.front()).name << ")\n";
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput || gate.type == GateType::kOutput)
      continue;
    out << gate.name << " = "
        << (gate.type == GateType::kBuf ? "BUFF"
                                        : std::string(gate_type_name(gate.type)))
        << "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i != 0) out << ", ";
      out << circuit.gate(gate.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Circuit& circuit) {
  std::ostringstream out;
  write_bench(out, circuit);
  return out.str();
}

}  // namespace rd
