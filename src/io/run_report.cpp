#include "io/run_report.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rd {

namespace {

/// rd_percent is meaningful only on a completed run over a nonempty
/// path set with a finite value; everything else serializes as null.
JsonValue rd_percent_json(const ClassifyResult& result) {
  if (!result.completed) return JsonValue::null();
  if (result.total_logical.is_zero()) return JsonValue::null();
  if (!std::isfinite(result.rd_percent)) return JsonValue::null();
  return JsonValue::number(result.rd_percent);
}

JsonValue implication_json(const ImplicationStats& stats) {
  JsonValue out = JsonValue::object();
  out.set("assignments", JsonValue::number(stats.assignments));
  out.set("propagations", JsonValue::number(stats.propagations));
  out.set("conflicts", JsonValue::number(stats.conflicts));
  out.set("backward", JsonValue::number(stats.backward));
  return out;
}

JsonValue closure_json(const ClosureStats& stats) {
  JsonValue out = JsonValue::object();
  out.set("literals", JsonValue::number(stats.literals));
  out.set("dense_rows", JsonValue::number(stats.dense_rows));
  out.set("csr_rows", JsonValue::number(stats.csr_rows));
  out.set("bytes", JsonValue::number(stats.bytes));
  out.set("build_seconds", JsonValue::number(stats.build_seconds));
  out.set("hits", JsonValue::number(stats.hits));
  out.set("misses", JsonValue::number(stats.misses));
  out.set("learned_assignments", JsonValue::number(stats.learned_assignments));
  out.set("learned_dropped", JsonValue::number(stats.learned_dropped));
  return out;
}

}  // namespace

JsonValue run_report_envelope(const std::string& kind) {
  JsonValue report = JsonValue::object();
  report.set("schema_version", JsonValue::number(kRunReportSchemaVersion));
  report.set("kind", JsonValue::string(kind));
  return report;
}

JsonValue abort_reason_json(AbortReason reason) {
  if (reason == AbortReason::kNone) return JsonValue::null();
  return JsonValue::string(abort_reason_name(reason));
}

JsonValue resilient_json(const ResilientClassifyResult& result) {
  JsonValue out = JsonValue::object();
  out.set("engine", JsonValue::string(engine_rung_name(result.engine)));
  if (!result.attempted.empty() && result.attempted.front() != result.engine) {
    out.set("degraded_from",
            JsonValue::string(engine_rung_name(result.attempted.front())));
  } else {
    out.set("degraded_from", JsonValue::null());
  }
  out.set("abort_reason", abort_reason_json(result.degraded_reason));
  return out;
}

JsonValue classify_result_json(const ClassifyResult& result) {
  JsonValue out = JsonValue::object();
  out.set("completed", JsonValue::boolean(result.completed));
  // Aborted runs always name a cause: an untyped abort (a legacy
  // work_limit trip that never set the field) defaults to work_budget
  // so the null-iff-completed validator rule holds for every report.
  AbortReason reason = AbortReason::kNone;
  if (!result.completed)
    reason = result.abort_reason == AbortReason::kNone
                 ? AbortReason::kWorkBudget
                 : result.abort_reason;
  out.set("abort_reason", abort_reason_json(reason));
  out.set("kept_paths", JsonValue::number(result.kept_paths));
  // Exact decimal token: BigUint totals routinely exceed 2^64 (e.g.
  // c6288) and must not be rounded through a double.
  out.set("total_logical",
          JsonValue::number_token(result.total_logical.to_decimal()));
  if (result.completed) {
    out.set("rd_paths", JsonValue::number_token(result.rd_paths.to_decimal()));
  } else {
    out.set("rd_paths", JsonValue::null());
  }
  out.set("rd_percent", rd_percent_json(result));
  out.set("work", JsonValue::number(result.work));
  out.set("wall_seconds", JsonValue::number(result.wall_seconds));
  out.set("implication", implication_json(result.implication));
  // Optional, additive (no schema bump): present only when the run used
  // a static implication tier.
  if (result.closure != ClosureStats{})
    out.set("closure", closure_json(result.closure));
  if (!result.worker_stats.empty()) {
    JsonValue workers = JsonValue::array();
    for (const ClassifyWorkerStats& stats : result.worker_stats) {
      JsonValue worker = JsonValue::object();
      worker.set("seeds", JsonValue::number(stats.seeds));
      worker.set("steals", JsonValue::number(stats.steals));
      worker.set("work", JsonValue::number(stats.work));
      worker.set("busy_seconds", JsonValue::number(stats.busy_seconds));
      workers.append(std::move(worker));
    }
    out.set("workers", std::move(workers));
  }
  return out;
}

JsonValue classify_run_report(const std::string& circuit_name,
                              const std::string& method,
                              const RdIdentification& rd,
                              const MetricsRegistry* metrics) {
  JsonValue report = run_report_envelope("classify_run");
  report.set("circuit", JsonValue::string(circuit_name));
  report.set("method", JsonValue::string(method));
  report.set("sort_seconds", JsonValue::number(rd.sort_seconds));
  report.set("prerun_work", JsonValue::number(rd.prerun_work));
  report.set("classify", classify_result_json(rd.classify));
  if (metrics != nullptr) report.set("metrics", metrics_json(*metrics));
  return report;
}

JsonValue atpg_run_report(const std::string& circuit_name,
                          const RdIdentification& rd,
                          const GeneratedTestSet& set,
                          const MetricsRegistry* metrics) {
  JsonValue report = run_report_envelope("atpg_run");
  report.set("circuit", JsonValue::string(circuit_name));
  report.set("classify", classify_result_json(rd.classify));

  JsonValue atpg = JsonValue::object();
  atpg.set("tests", JsonValue::number(
                        static_cast<std::uint64_t>(set.tests.size())));
  atpg.set("robust", JsonValue::number(
                         static_cast<std::uint64_t>(set.robust_count)));
  atpg.set("nonrobust", JsonValue::number(static_cast<std::uint64_t>(
                            set.nonrobust_count)));
  atpg.set("undetected", JsonValue::number(static_cast<std::uint64_t>(
                             set.undetected_count)));
  atpg.set("robust_coverage_percent",
           JsonValue::number(set.robust_coverage_percent));
  atpg.set("robust_nodes", JsonValue::number(set.robust_nodes));
  atpg.set("nonrobust_nodes", JsonValue::number(set.nonrobust_nodes));
  atpg.set("robust_budget_exceeded",
           JsonValue::number(
               static_cast<std::uint64_t>(set.robust_budget_exceeded)));
  atpg.set("nonrobust_budget_exceeded",
           JsonValue::number(
               static_cast<std::uint64_t>(set.nonrobust_budget_exceeded)));
  atpg.set("completed", JsonValue::boolean(set.completed));
  AbortReason atpg_reason = AbortReason::kNone;
  if (!set.completed)
    atpg_reason = set.abort_reason == AbortReason::kNone
                      ? AbortReason::kWorkBudget
                      : set.abort_reason;
  atpg.set("abort_reason", abort_reason_json(atpg_reason));
  atpg.set("wall_seconds", JsonValue::number(set.wall_seconds));
  report.set("atpg", std::move(atpg));
  if (metrics != nullptr) report.set("metrics", metrics_json(*metrics));
  return report;
}

JsonValue eco_json(const EcoStats& stats,
                   const ConeCacheStore::Stats& store) {
  JsonValue out = JsonValue::object();
  out.set("cones", JsonValue::number(stats.cones));
  out.set("hits", JsonValue::number(stats.hits));
  out.set("misses", JsonValue::number(stats.misses));
  out.set("stored", JsonValue::number(stats.stored));
  out.set("stale_loaded", JsonValue::number(store.stale_loaded));
  out.set("records", JsonValue::number(store.records));
  out.set("evictions", JsonValue::number(store.evictions));
  const ConeCacheRecovery& r = store.recovery;
  JsonValue recovery = JsonValue::object();
  recovery.set("torn_tmp", JsonValue::number(r.torn_tmp));
  recovery.set("bad_header", JsonValue::number(r.bad_header));
  recovery.set("version_skew", JsonValue::number(r.version_skew));
  recovery.set("truncated", JsonValue::number(r.truncated));
  recovery.set("crc_mismatch", JsonValue::number(r.crc_mismatch));
  recovery.set("malformed_record", JsonValue::number(r.malformed_record));
  recovery.set("duplicate_key", JsonValue::number(r.duplicate_key));
  recovery.set("quarantined_files", JsonValue::number(r.quarantined_files));
  out.set("recovery", std::move(recovery));
  // Optional, additive (no schema bump): per-cone closure observability
  // when the incremental run used a static implication tier.
  if (stats.closure_builds > 0) {
    JsonValue closure = JsonValue::object();
    closure.set("builds", JsonValue::number(stats.closure_builds));
    closure.set("build_seconds",
                JsonValue::number(stats.closure_build_seconds));
    closure.set("hits", JsonValue::number(stats.closure.hits));
    closure.set("misses", JsonValue::number(stats.closure.misses));
    out.set("closure", std::move(closure));
  }
  return out;
}

JsonValue bench_report(const std::string& bench_name) {
  JsonValue report = run_report_envelope("bench");
  report.set("bench", JsonValue::string(bench_name));
  report.set("rows", JsonValue::array());
  return report;
}

JsonValue serve_ack_report(std::uint64_t id, bool has_id) {
  JsonValue report = run_report_envelope("serve_ack");
  report.set("id", has_id ? JsonValue::number(id) : JsonValue::null());
  report.set("ok", JsonValue::boolean(true));
  return report;
}

JsonValue serve_error_report(std::uint64_t id, bool has_id,
                             const std::string& code,
                             const std::string& message) {
  JsonValue report = run_report_envelope("serve_error");
  report.set("id", has_id ? JsonValue::number(id) : JsonValue::null());
  report.set("ok", JsonValue::boolean(false));
  JsonValue error = JsonValue::object();
  error.set("code", JsonValue::string(code));
  error.set("message", JsonValue::string(message));
  report.set("error", std::move(error));
  return report;
}

JsonValue metrics_json(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snapshot = registry.snapshot();
  JsonValue out = JsonValue::object();

  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters)
    counters.set(name, JsonValue::number(value));
  out.set("counters", std::move(counters));

  JsonValue timers = JsonValue::object();
  for (const auto& [name, value] : snapshot.timers) {
    JsonValue timer = JsonValue::object();
    timer.set("seconds", JsonValue::number(value.seconds));
    timer.set("count", JsonValue::number(value.count));
    timers.set(name, std::move(timer));
  }
  out.set("timers", std::move(timers));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : snapshot.gauges)
    gauges.set(name, JsonValue::number(value));
  out.set("gauges", std::move(gauges));
  return out;
}

void record_classify_metrics(const ClassifyResult& result,
                             MetricsRegistry& registry) {
  registry.add_counter("classify.runs");
  if (!result.completed) registry.add_counter("classify.aborted");
  registry.add_counter("classify.kept_paths", result.kept_paths);
  registry.add_counter("classify.work", result.work);
  registry.add_counter("implication.assignments",
                       result.implication.assignments);
  registry.add_counter("implication.propagations",
                       result.implication.propagations);
  registry.add_counter("implication.conflicts", result.implication.conflicts);
  registry.add_counter("implication.backward", result.implication.backward);
  if (result.closure != ClosureStats{}) {
    registry.add_counter("closure.hits", result.closure.hits);
    registry.add_counter("closure.misses", result.closure.misses);
    registry.add_counter("closure.learned_assignments",
                         result.closure.learned_assignments);
    registry.add_counter("closure.learned_dropped",
                         result.closure.learned_dropped);
    registry.add_timer("closure.build", result.closure.build_seconds);
  }
  registry.add_timer("classify.wall", result.wall_seconds);
  for (const ClassifyWorkerStats& stats : result.worker_stats) {
    registry.add_counter("classify.worker_seeds", stats.seeds);
    registry.add_counter("classify.worker_steals", stats.steals);
    registry.add_timer("classify.worker_busy", stats.busy_seconds);
  }
}

namespace {

void require_key(const JsonValue& object, const char* key,
                 std::vector<std::string>& problems) {
  if (object.find(key) == nullptr)
    problems.push_back(std::string("missing key \"") + key + "\"");
}

bool is_abort_reason_name(const std::string& name) {
  for (const AbortReason reason :
       {AbortReason::kDeadline, AbortReason::kWorkBudget, AbortReason::kMemory,
        AbortReason::kCancelled})
    if (name == abort_reason_name(reason)) return true;
  return false;
}

/// Shared rule for classify payloads and atpg blocks: "abort_reason"
/// must exist, be null exactly on completed runs, and otherwise name a
/// known AbortReason.
void validate_abort_reason(const JsonValue& object, const char* context,
                           std::vector<std::string>& problems) {
  const JsonValue* reason = object.find("abort_reason");
  if (reason == nullptr) {
    problems.push_back(std::string("missing key \"abort_reason\" in ") +
                       context);
    return;
  }
  const JsonValue* completed = object.find("completed");
  const bool is_completed =
      completed != nullptr && completed->is_bool() && completed->as_bool();
  if (reason->is_null()) {
    if (!is_completed)
      problems.push_back(std::string("aborted ") + context +
                         " has null \"abort_reason\"");
    return;
  }
  if (!reason->is_string()) {
    problems.push_back(std::string("\"abort_reason\" in ") + context +
                       " is neither null nor a string");
    return;
  }
  if (is_completed)
    problems.push_back(std::string("completed ") + context +
                       " has non-null \"abort_reason\"");
  if (!is_abort_reason_name(reason->as_string()))
    problems.push_back("unknown abort_reason \"" + reason->as_string() +
                       "\" in " + context);
}

void validate_classify_payload(const JsonValue& report,
                               std::vector<std::string>& problems) {
  const JsonValue* classify = report.find("classify");
  if (classify == nullptr) {
    problems.push_back("missing key \"classify\"");
    return;
  }
  if (!classify->is_object()) {
    problems.push_back("\"classify\" is not an object");
    return;
  }
  for (const char* key :
       {"completed", "abort_reason", "kept_paths", "total_logical",
        "rd_paths", "rd_percent", "work", "wall_seconds", "implication"})
    require_key(*classify, key, problems);
  validate_abort_reason(*classify, "classify payload", problems);
  const JsonValue* completed = classify->find("completed");
  if (completed != nullptr && completed->is_bool() && completed->as_bool()) {
    const JsonValue* rd_paths = classify->find("rd_paths");
    if (rd_paths != nullptr && rd_paths->is_null())
      problems.push_back("completed run has null \"rd_paths\"");
  }
  // Optional "closure" object (static implication tier observability);
  // every field must be a number when the block is present.
  const JsonValue* closure = classify->find("closure");
  if (closure != nullptr) {
    if (!closure->is_object()) {
      problems.push_back("\"classify.closure\" is not an object");
    } else {
      for (const char* key :
           {"literals", "dense_rows", "csr_rows", "bytes", "build_seconds",
            "hits", "misses", "learned_assignments", "learned_dropped"}) {
        const JsonValue* value = closure->find(key);
        if (value == nullptr)
          problems.push_back(std::string("missing key \"") + key +
                             "\" in classify.closure");
        else if (!value->is_number())
          problems.push_back(std::string("\"classify.closure.") + key +
                             "\" is not a number");
      }
    }
  }
}

void validate_resilient_payload(const JsonValue& report,
                                std::vector<std::string>& problems) {
  const JsonValue* resilient = report.find("resilient");
  if (resilient == nullptr) return;  // optional
  if (!resilient->is_object()) {
    problems.push_back("\"resilient\" is not an object");
    return;
  }
  for (const char* key : {"engine", "degraded_from", "abort_reason"})
    require_key(*resilient, key, problems);
  const JsonValue* engine = resilient->find("engine");
  if (engine != nullptr && !engine->is_string())
    problems.push_back("\"resilient.engine\" is not a string");
  const JsonValue* degraded = resilient->find("degraded_from");
  if (degraded != nullptr && !degraded->is_null() && !degraded->is_string())
    problems.push_back(
        "\"resilient.degraded_from\" is neither null nor a string");
  const JsonValue* reason = resilient->find("abort_reason");
  if (reason != nullptr && !reason->is_null() &&
      !(reason->is_string() && is_abort_reason_name(reason->as_string())))
    problems.push_back(
        "\"resilient.abort_reason\" is neither null nor a known reason");
}

/// Counter keys of the "eco.recovery" ladder and the top-level "eco"
/// object — every one must be a number when present.
void require_counter(const JsonValue& object, const char* owner,
                     const char* key, std::vector<std::string>& problems) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    problems.push_back(std::string("missing key \"") + key + "\" in " +
                       owner);
    return;
  }
  if (!value->is_number())
    problems.push_back(std::string("\"") + owner + "." + key +
                       "\" is not a number");
}

/// The optional "eco" object of incremental classify_run reports:
/// cache counters plus the typed recovery ladder.
void validate_eco_payload(const JsonValue& report,
                          std::vector<std::string>& problems) {
  const JsonValue* eco = report.find("eco");
  if (eco == nullptr) return;  // optional
  if (!eco->is_object()) {
    problems.push_back("\"eco\" is not an object");
    return;
  }
  for (const char* key : {"cones", "hits", "misses", "stored",
                          "stale_loaded", "records", "evictions"})
    require_counter(*eco, "eco", key, problems);
  const JsonValue* recovery = eco->find("recovery");
  if (recovery == nullptr) {
    problems.push_back("missing key \"recovery\" in eco");
    return;
  }
  if (!recovery->is_object()) {
    problems.push_back("\"eco.recovery\" is not an object");
    return;
  }
  for (const char* key :
       {"torn_tmp", "bad_header", "version_skew", "truncated",
        "crc_mismatch", "malformed_record", "duplicate_key",
        "quarantined_files"})
    require_counter(*recovery, "eco.recovery", key, problems);
  const JsonValue* closure = eco->find("closure");
  if (closure != nullptr) {  // optional
    if (!closure->is_object()) {
      problems.push_back("\"eco.closure\" is not an object");
    } else {
      for (const char* key : {"builds", "build_seconds", "hits", "misses"})
        require_counter(*closure, "eco.closure", key, problems);
    }
  }
}

/// The optional "serve" object a daemon attaches to job reports:
/// request correlation id plus the circuit-cache verdict.  Optional
/// extras: "cache_evictions"/"cache_failures" (CircuitCache pressure
/// counters) and a "cone_cache" object ({hit, miss, recovered} for the
/// request's incremental slice).
void validate_serve_payload(const JsonValue& report,
                            std::vector<std::string>& problems) {
  const JsonValue* serve = report.find("serve");
  if (serve == nullptr) return;  // optional
  if (!serve->is_object()) {
    problems.push_back("\"serve\" is not an object");
    return;
  }
  for (const char* key : {"id", "cache_hit"})
    require_key(*serve, key, problems);
  const JsonValue* id = serve->find("id");
  if (id != nullptr && !id->is_null() && !id->is_number())
    problems.push_back("\"serve.id\" is neither null nor a number");
  const JsonValue* cache_hit = serve->find("cache_hit");
  if (cache_hit != nullptr && !cache_hit->is_bool())
    problems.push_back("\"serve.cache_hit\" is not a bool");
  for (const char* key : {"cache_evictions", "cache_failures"}) {
    const JsonValue* value = serve->find(key);
    if (value != nullptr && !value->is_number())
      problems.push_back(std::string("\"serve.") + key +
                         "\" is not a number");
  }
  const JsonValue* cone_cache = serve->find("cone_cache");
  if (cone_cache != nullptr) {
    if (!cone_cache->is_object()) {
      problems.push_back("\"serve.cone_cache\" is not an object");
    } else {
      for (const char* key : {"hits", "misses", "recovered"})
        require_counter(*cone_cache, "serve.cone_cache", key, problems);
    }
  }
  const JsonValue* closure = serve->find("closure");
  if (closure != nullptr) {  // optional
    if (!closure->is_object()) {
      problems.push_back("\"serve.closure\" is not an object");
    } else {
      const JsonValue* cached = closure->find("cached");
      if (cached == nullptr)
        problems.push_back("missing key \"cached\" in serve.closure");
      else if (!cached->is_bool())
        problems.push_back("\"serve.closure.cached\" is not a bool");
      require_counter(*closure, "serve.closure", "build_seconds", problems);
    }
  }
}

/// Frame-level serve kinds: both carry "id" (number or null) and "ok";
/// serve_error additionally carries an "error" {code, message} object.
void validate_serve_frame(const JsonValue& report, bool is_error,
                          std::vector<std::string>& problems) {
  for (const char* key : {"id", "ok"}) require_key(report, key, problems);
  const JsonValue* id = report.find("id");
  if (id != nullptr && !id->is_null() && !id->is_number())
    problems.push_back("\"id\" is neither null nor a number");
  const JsonValue* ok = report.find("ok");
  if (ok != nullptr && !ok->is_bool()) problems.push_back("\"ok\" is not a bool");
  if (!is_error) return;
  const JsonValue* error = report.find("error");
  if (error == nullptr) {
    problems.push_back("missing key \"error\"");
    return;
  }
  if (!error->is_object()) {
    problems.push_back("\"error\" is not an object");
    return;
  }
  for (const char* key : {"code", "message"})
    require_key(*error, key, problems);
  const JsonValue* message = error->find("message");
  if (message != nullptr && !message->is_string())
    problems.push_back("\"error.message\" is not a string");
  const JsonValue* code = error->find("code");
  if (code != nullptr && !code->is_string())
    problems.push_back("\"error.code\" is not a string");
}

}  // namespace

std::vector<std::string> validate_run_report(const JsonValue& report) {
  std::vector<std::string> problems;
  if (!report.is_object()) {
    problems.push_back("report is not a JSON object");
    return problems;
  }

  const JsonValue* version = report.find("schema_version");
  if (version == nullptr) {
    problems.push_back("missing key \"schema_version\"");
  } else if (!version->is_number()) {
    problems.push_back("\"schema_version\" is not a number");
  } else {
    bool supported = false;
    try {
      supported = version->as_uint64() == kRunReportSchemaVersion;
    } catch (const std::runtime_error&) {
      // Non-integral token; unsupported.
    }
    if (!supported) problems.push_back("unsupported schema_version");
  }

  const JsonValue* kind = report.find("kind");
  if (kind == nullptr) {
    problems.push_back("missing key \"kind\"");
    return problems;
  }
  if (!kind->is_string()) {
    problems.push_back("\"kind\" is not a string");
    return problems;
  }

  const std::string& kind_name = kind->as_string();
  if (kind_name == "classify_run") {
    for (const char* key : {"circuit", "method", "sort_seconds",
                            "prerun_work"})
      require_key(report, key, problems);
    validate_classify_payload(report, problems);
    validate_resilient_payload(report, problems);
    validate_eco_payload(report, problems);
    validate_serve_payload(report, problems);
  } else if (kind_name == "atpg_run") {
    require_key(report, "circuit", problems);
    validate_classify_payload(report, problems);
    validate_serve_payload(report, problems);
    const JsonValue* atpg = report.find("atpg");
    if (atpg == nullptr) {
      problems.push_back("missing key \"atpg\"");
    } else if (!atpg->is_object()) {
      problems.push_back("\"atpg\" is not an object");
    } else {
      for (const char* key :
           {"tests", "robust", "nonrobust", "undetected",
            "robust_coverage_percent", "completed", "abort_reason",
            "wall_seconds"})
        require_key(*atpg, key, problems);
      validate_abort_reason(*atpg, "atpg block", problems);
    }
  } else if (kind_name == "bench") {
    require_key(report, "bench", problems);
    const JsonValue* rows = report.find("rows");
    if (rows == nullptr) {
      problems.push_back("missing key \"rows\"");
    } else if (!rows->is_array()) {
      problems.push_back("\"rows\" is not an array");
    } else {
      for (std::size_t i = 0; i < rows->size(); ++i)
        if (!rows->at(i).is_object())
          problems.push_back("rows[" + std::to_string(i) +
                             "] is not an object");
    }
  } else if (kind_name == "serve_ack") {
    validate_serve_frame(report, /*is_error=*/false, problems);
  } else if (kind_name == "serve_error") {
    validate_serve_frame(report, /*is_error=*/true, problems);
  } else {
    problems.push_back("unknown kind \"" + kind_name + "\"");
  }
  return problems;
}

void write_json_file(const std::string& path, const JsonValue& value) {
  const std::string text = value.to_string();  // already newline-terminated
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok)
    throw std::runtime_error("short write to " + path);
}

}  // namespace rd
