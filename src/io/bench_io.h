// ISCAS-85 ".bench" netlist format reader and writer.
//
// The format used by the ISCAS benchmark distributions:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//
// Signals are named; OUTPUT(x) marks signal x as observed, which this
// library models as a PO marker gate carrying the signal's name.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace rd {

/// Parses a circuit from bench-format text.  Throws std::runtime_error
/// with a line number on malformed input.  The returned circuit is
/// finalized.
Circuit read_bench(std::istream& in, std::string circuit_name = {});

/// Convenience overload for in-memory text (used heavily in tests).
Circuit read_bench_string(const std::string& text,
                          std::string circuit_name = {});

/// Reads a .bench file from disk.
Circuit read_bench_file(const std::string& path);

/// Serializes a finalized circuit to bench format.  BUF gates are written
/// as BUFF (the ISCAS spelling).  Gate names must be unique.
void write_bench(std::ostream& out, const Circuit& circuit);

/// Serialization to a string.
std::string write_bench_string(const Circuit& circuit);

}  // namespace rd
