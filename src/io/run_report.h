// Schema-versioned JSON run reports — the contract between the tools
// that emit observability data (rdfast_cli --stats-json, the bench_*
// harnesses via --json) and whatever consumes it (scripts/run_bench.sh,
// dashboards, the golden-schema tests).
//
// Every report is a JSON object with the shared envelope
//
//   {
//     "schema_version": 1,
//     "kind": "classify_run" | "atpg_run" | "bench",
//     ...kind-specific payload...
//   }
//
// and validate_run_report() checks exactly that contract, so any file
// this layer writes can be round-tripped through parse_json +
// validate_run_report (rdfast_cli validate-json does precisely this).
//
// Number handling rules the builders guarantee:
//   * BigUint path totals serialize as exact decimal number tokens —
//     never rounded through a double;
//   * rd statistics of an incomplete (work-limit aborted) or pathless
//     run serialize as explicit nulls, never 0-that-means-unknown and
//     never a NaN/Inf token (the JsonValue layer enforces the latter).
#pragma once

#include <string>
#include <vector>

#include "atpg/testset.h"
#include "cache/cone_cache.h"
#include "cache/eco_classify.h"
#include "core/classify.h"
#include "core/heuristics.h"
#include "core/resilient.h"
#include "io/json_writer.h"
#include "util/exec_guard.h"
#include "util/metrics.h"

namespace rd {

/// Bump when a field is renamed/removed or its meaning changes; adding
/// new optional fields is backward compatible and does not bump.
/// v2: classify payloads and atpg blocks carry a required
/// "abort_reason" (null on completed runs, else the AbortReason name),
/// and classify_run reports may carry a "resilient" object describing
/// the degradation ladder.
/// v2 additions (no bump — new kinds and optional fields only): the
/// serve protocol's "serve_ack" and "serve_error" kinds, and an
/// optional "serve" object ({"id", "cache_hit", ...}) on classify_run
/// and atpg_run reports, so every daemon response frame validates
/// against this schema.
/// Further v2 additions (no bump): an optional "eco" object on
/// classify_run reports (incremental-run cache counters plus the typed
/// cone-cache recovery ladder, see eco_json), an optional "cone_cache"
/// object inside "serve" payloads, and optional "cache_evictions" /
/// "cache_failures" counters there (the CircuitCache verdict beyond
/// plain hit/miss).
/// Further v2 additions (no bump): an optional "closure" object inside
/// classify payloads (static implication tier observability — build
/// shape/cost, hit/miss counters, learned-probe counters), an optional
/// "closure" object inside "eco" blocks (per-cone builds +
/// build_seconds + hit/miss), and an optional "closure" object inside
/// "serve" payloads ({"cached", "build_seconds"} — whether the daemon
/// served the request from an entry's shared closure).
inline constexpr std::uint64_t kRunReportSchemaVersion = 2;

/// The shared envelope: {"schema_version": N, "kind": kind}.
JsonValue run_report_envelope(const std::string& kind);

/// kNone serializes as null, every other reason as its stable name
/// ("deadline", "work_budget", "memory", "cancelled").
JsonValue abort_reason_json(AbortReason reason);

/// Degradation-ladder record for classify_run reports: {"engine":
/// rung-that-answered, "degraded_from": strongest attempted rung (null
/// when it answered itself), "abort_reason": why it was abandoned}.
JsonValue resilient_json(const ResilientClassifyResult& result);

/// One ClassifyResult as a JSON object (shared by every report kind):
/// kept_paths, total_logical (exact decimal token), rd_paths /
/// rd_percent (null unless the run completed with finite values),
/// completed, work, wall_seconds, implication counters, and a workers
/// array on parallel runs.
JsonValue classify_result_json(const ClassifyResult& result);

/// "classify_run" report for one end-to-end RD identification.
JsonValue classify_run_report(const std::string& circuit_name,
                              const std::string& method,
                              const RdIdentification& rd,
                              const MetricsRegistry* metrics = nullptr);

/// "atpg_run" report: classification plus the generated test set.
JsonValue atpg_run_report(const std::string& circuit_name,
                          const RdIdentification& rd,
                          const GeneratedTestSet& set,
                          const MetricsRegistry* metrics = nullptr);

/// Optional "eco" object for classify_run reports of incremental runs:
/// {"cones", "hits", "misses", "stored", "stale_loaded", "records",
/// "recovery": {typed ladder counters}}.  The recovery block is the
/// run report's record of every damaged cache artifact the store
/// survived — the acceptance contract of DESIGN.md §13.
JsonValue eco_json(const EcoStats& stats,
                   const ConeCacheStore::Stats& store);

/// "bench" report envelope with an empty "rows" array; the bench
/// harness appends one object per table row.
JsonValue bench_report(const std::string& bench_name);

/// "serve_ack" frame: a daemon's non-job response (ping, shutdown,
/// validate, stats), still carrying the schema envelope so every frame
/// a client reads passes validate_run_report.  `has_id` false maps the
/// id to null (requests that never carried one).
JsonValue serve_ack_report(std::uint64_t id, bool has_id = true);

/// "serve_error" frame: a typed refusal (parse error, bad request
/// field, oversized frame) with a human-readable message and a stable
/// machine code ("parse_error", "bad_request", "frame_too_large",
/// "shutting_down", "internal").
JsonValue serve_error_report(std::uint64_t id, bool has_id,
                             const std::string& code,
                             const std::string& message);

/// A metrics-registry snapshot as {"counters": {...}, "timers":
/// {"name": {"seconds": s, "count": n}, ...}, "gauges": {...}}.
JsonValue metrics_json(const MetricsRegistry& registry);

/// Folds one classify run's counters and timings into `registry`
/// (run-granularity: one call per run, never per event).  Metric names
/// are documented in DESIGN.md.
void record_classify_metrics(const ClassifyResult& result,
                             MetricsRegistry& registry);

/// Structural validation of a report against the envelope + the
/// kind-specific required keys.  Returns human-readable problems;
/// empty means the report conforms.
std::vector<std::string> validate_run_report(const JsonValue& report);

/// Serializes `value` (pretty, trailing newline) to `path`; throws
/// std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const JsonValue& value);

}  // namespace rd
