// Minimal JSON document model, serializer and parser — the output side
// of the observability layer (run reports, BENCH_*.json) plus the
// parser used to validate those reports (rdfast_cli validate-json and
// the golden-schema tests round-trip every emitted file through it).
//
// Scope is deliberately small: a JsonValue tree with insertion-ordered
// objects, exact serialization of 64-bit integers (numbers are stored
// as raw JSON number tokens, never forced through a double), and one
// robustness rule the report writers rely on: non-finite doubles
// serialize as null, so a NaN/Inf metric can never produce an invalid
// JSON token.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rd {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed value is null.
  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool value);
  /// Non-finite doubles become null (never an invalid token).
  static JsonValue number(double value);
  static JsonValue number(std::uint64_t value);
  static JsonValue number(std::int64_t value);
  static JsonValue number(int value) {
    return number(static_cast<std::int64_t>(value));
  }
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();
  /// Wraps an already-validated JSON number token verbatim (the parser
  /// uses this to preserve exactness beyond the double range).
  static JsonValue number_token(std::string token);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw std::runtime_error on kind mismatch (the
  /// validation code paths want loud failures, not default values).
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;
  JsonValue& append(JsonValue value);

  /// Object access: set() overwrites an existing key in place (order
  /// preserved); find() returns nullptr when the key is absent.
  JsonValue& set(std::string_view key, JsonValue value);
  const JsonValue* find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes with 2-space indentation and "\n" line ends; output is
  /// stable (objects keep insertion order) so reports diff cleanly.
  std::string to_string() const;

 private:
  void write(std::string& out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number token (kNumber) or string (kString)
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Throws std::runtime_error with a
/// line/column-prefixed message on malformed input.
JsonValue parse_json(std::string_view text);

/// Escapes `text` as a JSON string literal including the quotes.
std::string json_escape(std::string_view text);

}  // namespace rd
