#include "io/pla_io.h"

#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace rd {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("pla line " + std::to_string(line_no) + ": " +
                           message);
}

/// Strict decimal count for .i/.o/.p: the whole token must be digits
/// and fit a std::size_t.  Errors report the directive and line — a
/// malformed file must never surface a bare std::invalid_argument /
/// std::out_of_range from the standard library.
std::size_t parse_count(std::string_view token, const std::string& directive,
                        std::size_t line_no) {
  std::size_t value = 0;
  const auto [end, error] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (error == std::errc::result_out_of_range)
    fail(line_no, directive + " count '" + std::string(token) +
                      "' is out of range");
  if (error != std::errc() || end != token.data() + token.size())
    fail(line_no, directive + " count '" + std::string(token) +
                      "' is not a non-negative integer");
  // A count bounding per-cube allocations: anything near SIZE_MAX is a
  // corrupt file, not a real PLA; reject before reserve() can throw.
  if (value > std::numeric_limits<std::uint32_t>::max())
    fail(line_no, directive + " count '" + std::string(token) +
                      "' is implausibly large");
  return value;
}

/// Whitespace-split with empty pieces dropped, so ".i  3" (repeated
/// blanks) tokenizes the same as ".i 3".
std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  for (std::string& piece : split(text, ' '))
    if (!piece.empty()) tokens.push_back(std::move(piece));
  return tokens;
}

}  // namespace

Pla read_pla(std::istream& in, std::string name) {
  Pla pla;
  pla.name = std::move(name);
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_terms = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    if (ended) fail(line_no, "content after .e");
    if (text.front() == '.') {
      const auto pieces = tokenize(text);
      const std::string directive = to_lower(pieces.front());
      if (directive == ".i") {
        if (pieces.size() < 2) fail(line_no, ".i needs a count");
        pla.num_inputs = parse_count(pieces[1], ".i", line_no);
      } else if (directive == ".o") {
        if (pieces.size() < 2) fail(line_no, ".o needs a count");
        pla.num_outputs = parse_count(pieces[1], ".o", line_no);
      } else if (directive == ".p") {
        if (pieces.size() < 2) fail(line_no, ".p needs a count");
        declared_terms = parse_count(pieces[1], ".p", line_no);
      } else if (directive == ".ilb") {
        pla.input_labels.assign(pieces.begin() + 1, pieces.end());
      } else if (directive == ".ob") {
        pla.output_labels.assign(pieces.begin() + 1, pieces.end());
      } else if (directive == ".e" || directive == ".end") {
        ended = true;
      } else if (directive == ".type") {
        // Accepted but only ON-set semantics are implemented.
      } else {
        fail(line_no, "unknown directive '" + directive + "'");
      }
      continue;
    }

    // Cube line: <inputs> <outputs>, whitespace between parts optional in
    // the wild; we accept any whitespace split and re-join.
    std::string compact;
    for (char c : text)
      if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
    if (pla.num_inputs == 0 && pla.num_outputs == 0)
      fail(line_no, "cube before .i/.o");
    if (compact.size() != pla.num_inputs + pla.num_outputs)
      fail(line_no, "cube width mismatch: got " +
                        std::to_string(compact.size()) + " literals, .i/.o " +
                        "declare " +
                        std::to_string(pla.num_inputs + pla.num_outputs));
    Cube cube;
    cube.inputs.reserve(pla.num_inputs);
    for (std::size_t i = 0; i < pla.num_inputs; ++i) {
      switch (compact[i]) {
        case '1': cube.inputs.push_back(CubeLit::kPositive); break;
        case '0': cube.inputs.push_back(CubeLit::kNegative); break;
        case '-':
        case '2': cube.inputs.push_back(CubeLit::kDontCare); break;
        default: fail(line_no, "bad input literal");
      }
    }
    cube.outputs.reserve(pla.num_outputs);
    for (std::size_t i = 0; i < pla.num_outputs; ++i) {
      const char c = compact[pla.num_inputs + i];
      if (c != '1' && c != '0' && c != '-' && c != '~' && c != '4')
        fail(line_no, "bad output literal");
      cube.outputs.push_back(c == '1' || c == '4');
    }
    pla.cubes.push_back(std::move(cube));
  }
  if (declared_terms != 0 && declared_terms != pla.cubes.size())
    throw std::runtime_error("pla: .p count does not match cube count");
  if (pla.input_labels.empty())
    for (std::size_t i = 0; i < pla.num_inputs; ++i)
      pla.input_labels.push_back("in" + std::to_string(i));
  if (pla.output_labels.empty())
    for (std::size_t i = 0; i < pla.num_outputs; ++i)
      pla.output_labels.push_back("out" + std::to_string(i));
  if (pla.input_labels.size() != pla.num_inputs ||
      pla.output_labels.size() != pla.num_outputs)
    throw std::runtime_error("pla: label count mismatch");
  return pla;
}

Pla read_pla_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_pla(in, std::move(name));
}

std::string write_pla_string(const Pla& pla) {
  std::ostringstream out;
  out << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n.p "
      << pla.cubes.size() << "\n";
  for (const Cube& cube : pla.cubes) {
    for (CubeLit lit : cube.inputs) {
      out << (lit == CubeLit::kPositive ? '1'
                                        : lit == CubeLit::kNegative ? '0' : '-');
    }
    out << ' ';
    for (bool on : cube.outputs) out << (on ? '1' : '-');
    out << '\n';
  }
  out << ".e\n";
  return out.str();
}

}  // namespace rd
