#include "io/pla_io.h"

#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace rd {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::runtime_error("pla line " + std::to_string(line_no) + ": " +
                           message);
}

}  // namespace

Pla read_pla(std::istream& in, std::string name) {
  Pla pla;
  pla.name = std::move(name);
  std::string line;
  std::size_t line_no = 0;
  std::size_t declared_terms = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    if (ended) fail(line_no, "content after .e");
    if (text.front() == '.') {
      const auto pieces = split(text, ' ');
      const std::string directive = to_lower(pieces.front());
      if (directive == ".i") {
        if (pieces.size() < 2) fail(line_no, ".i needs a count");
        pla.num_inputs = std::stoul(pieces[1]);
      } else if (directive == ".o") {
        if (pieces.size() < 2) fail(line_no, ".o needs a count");
        pla.num_outputs = std::stoul(pieces[1]);
      } else if (directive == ".p") {
        if (pieces.size() < 2) fail(line_no, ".p needs a count");
        declared_terms = std::stoul(pieces[1]);
      } else if (directive == ".ilb") {
        pla.input_labels.assign(pieces.begin() + 1, pieces.end());
      } else if (directive == ".ob") {
        pla.output_labels.assign(pieces.begin() + 1, pieces.end());
      } else if (directive == ".e" || directive == ".end") {
        ended = true;
      } else if (directive == ".type") {
        // Accepted but only ON-set semantics are implemented.
      } else {
        fail(line_no, "unknown directive '" + directive + "'");
      }
      continue;
    }

    // Cube line: <inputs> <outputs>, whitespace between parts optional in
    // the wild; we accept any whitespace split and re-join.
    std::string compact;
    for (char c : text)
      if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
    if (pla.num_inputs == 0 && pla.num_outputs == 0)
      fail(line_no, "cube before .i/.o");
    if (compact.size() != pla.num_inputs + pla.num_outputs)
      fail(line_no, "cube width mismatch");
    Cube cube;
    cube.inputs.reserve(pla.num_inputs);
    for (std::size_t i = 0; i < pla.num_inputs; ++i) {
      switch (compact[i]) {
        case '1': cube.inputs.push_back(CubeLit::kPositive); break;
        case '0': cube.inputs.push_back(CubeLit::kNegative); break;
        case '-':
        case '2': cube.inputs.push_back(CubeLit::kDontCare); break;
        default: fail(line_no, "bad input literal");
      }
    }
    cube.outputs.reserve(pla.num_outputs);
    for (std::size_t i = 0; i < pla.num_outputs; ++i) {
      const char c = compact[pla.num_inputs + i];
      if (c != '1' && c != '0' && c != '-' && c != '~' && c != '4')
        fail(line_no, "bad output literal");
      cube.outputs.push_back(c == '1' || c == '4');
    }
    pla.cubes.push_back(std::move(cube));
  }
  if (declared_terms != 0 && declared_terms != pla.cubes.size())
    throw std::runtime_error("pla: .p count does not match cube count");
  if (pla.input_labels.empty())
    for (std::size_t i = 0; i < pla.num_inputs; ++i)
      pla.input_labels.push_back("in" + std::to_string(i));
  if (pla.output_labels.empty())
    for (std::size_t i = 0; i < pla.num_outputs; ++i)
      pla.output_labels.push_back("out" + std::to_string(i));
  if (pla.input_labels.size() != pla.num_inputs ||
      pla.output_labels.size() != pla.num_outputs)
    throw std::runtime_error("pla: label count mismatch");
  return pla;
}

Pla read_pla_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_pla(in, std::move(name));
}

std::string write_pla_string(const Pla& pla) {
  std::ostringstream out;
  out << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n.p "
      << pla.cubes.size() << "\n";
  for (const Cube& cube : pla.cubes) {
    for (CubeLit lit : cube.inputs) {
      out << (lit == CubeLit::kPositive ? '1'
                                        : lit == CubeLit::kNegative ? '0' : '-');
    }
    out << ' ';
    for (bool on : cube.outputs) out << (on ? '1' : '-');
    out << '\n';
  }
  out << ".e\n";
  return out.str();
}

}  // namespace rd
