#include "io/stats.h"

#include <sstream>

#include "paths/counting.h"

namespace rd {

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats stats;
  stats.name = circuit.name();
  stats.num_inputs = circuit.inputs().size();
  stats.num_outputs = circuit.outputs().size();
  stats.num_logic_gates = circuit.num_logic_gates();
  stats.num_leads = circuit.num_leads();
  stats.depth = circuit.max_level();

  std::size_t fanin_sum = 0;
  std::size_t fanout_sum = 0;
  std::size_t fanout_sources = 0;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& gate = circuit.gate(id);
    ++stats.gates_by_type[static_cast<std::size_t>(gate.type)];
    if (gate.type != GateType::kInput && gate.type != GateType::kOutput) {
      fanin_sum += gate.fanins.size();
      stats.max_fanin = std::max(stats.max_fanin, gate.fanins.size());
    }
    if (gate.type != GateType::kOutput) {
      fanout_sum += gate.fanout_leads.size();
      stats.max_fanout = std::max(stats.max_fanout, gate.fanout_leads.size());
      ++fanout_sources;
    }
  }
  if (stats.num_logic_gates > 0)
    stats.avg_fanin = static_cast<double>(fanin_sum) /
                      static_cast<double>(stats.num_logic_gates);
  if (fanout_sources > 0)
    stats.avg_fanout =
        static_cast<double>(fanout_sum) / static_cast<double>(fanout_sources);

  const PathCounts counts(circuit);
  stats.physical_paths = counts.total_physical();
  stats.logical_paths = counts.total_logical();
  return stats;
}

std::string classify_run_stats_to_string(const ClassifyResult& result) {
  std::ostringstream out;
  if (result.worker_stats.empty()) {
    out << "serial run: " << result.work << " work units in "
        << result.wall_seconds << "s\n";
    return out.str();
  }
  std::uint64_t total_seeds = 0;
  std::uint64_t total_steals = 0;
  std::uint64_t total_work = 0;
  double total_busy = 0;
  for (std::size_t w = 0; w < result.worker_stats.size(); ++w) {
    const ClassifyWorkerStats& stats = result.worker_stats[w];
    out << "  worker " << w << ": " << stats.seeds << " seeds ("
        << stats.steals << " stolen), " << stats.work << " work units, "
        << stats.busy_seconds << "s busy\n";
    total_seeds += stats.seeds;
    total_steals += stats.steals;
    total_work += stats.work;
    total_busy += stats.busy_seconds;
  }
  out << "parallel run: " << result.worker_stats.size() << " workers, "
      << total_seeds << " seeds (" << total_steals << " stolen), "
      << total_work << " work units, wall " << result.wall_seconds
      << "s, utilization "
      << (result.wall_seconds > 0 ? total_busy / result.wall_seconds : 0.0)
      << "x\n";
  return out.str();
}

std::string stats_to_string(const CircuitStats& stats) {
  std::ostringstream out;
  out << "circuit " << (stats.name.empty() ? "(unnamed)" : stats.name) << "\n"
      << "  interface : " << stats.num_inputs << " PIs, " << stats.num_outputs
      << " POs\n"
      << "  gates     : " << stats.num_logic_gates << " logic gates, "
      << stats.num_leads << " leads, depth " << stats.depth << "\n"
      << "  by type   :";
  static constexpr GateType kTypes[] = {GateType::kAnd,  GateType::kOr,
                                        GateType::kNand, GateType::kNor,
                                        GateType::kNot,  GateType::kBuf};
  for (GateType type : kTypes) {
    const std::size_t count =
        stats.gates_by_type[static_cast<std::size_t>(type)];
    if (count > 0) out << ' ' << gate_type_name(type) << '=' << count;
  }
  out << "\n"
      << "  fan-in    : max " << stats.max_fanin << ", avg " << stats.avg_fanin
      << "\n"
      << "  fan-out   : max " << stats.max_fanout << ", avg "
      << stats.avg_fanout << "\n"
      << "  paths     : " << stats.physical_paths.to_decimal_grouped()
      << " physical, " << stats.logical_paths.to_decimal_grouped()
      << " logical\n";
  return out.str();
}

}  // namespace rd
