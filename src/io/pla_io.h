// Berkeley PLA (espresso) two-level format: the input format of the MCNC
// two-level benchmarks used in Table III of the paper.
//
//   .i 5
//   .o 2
//   .p 3
//   10-1- 10
//   ...
//   .e
//
// Only the ON-set interpretation (type fr/f) is supported: an output
// column '1' puts the cube in that output's ON-set; '0', '-' and '~'
// leave it out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rd {

/// Input literal polarity in a product term.
enum class CubeLit : std::uint8_t { kDontCare, kPositive, kNegative };

/// One product term of a two-level cover.
struct Cube {
  std::vector<CubeLit> inputs;  // one entry per PLA input
  std::vector<bool> outputs;    // one entry per PLA output: in ON-set?
};

/// A two-level sum-of-products cover (one cover shared by all outputs).
struct Pla {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::vector<Cube> cubes;

  /// Input labels (".ilb"), synthesized as in0.. if absent.
  std::vector<std::string> input_labels;
  /// Output labels (".ob"), synthesized as out0.. if absent.
  std::vector<std::string> output_labels;
};

/// Parses PLA text; throws std::runtime_error on malformed input.
Pla read_pla(std::istream& in, std::string name = {});

/// Convenience overload for in-memory text.
Pla read_pla_string(const std::string& text, std::string name = {});

/// Serializes a Pla back to espresso format.
std::string write_pla_string(const Pla& pla);

}  // namespace rd
