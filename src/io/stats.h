// Netlist statistics reporting: the numbers a benchmark table quotes
// about a circuit (gate histogram, fan-in/fan-out profile, depth, path
// counts), plus the observability block for parallel classification
// runs (per-worker seed/steal/work counters, utilization).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/classify.h"
#include "netlist/circuit.h"
#include "util/biguint.h"

namespace rd {

struct CircuitStats {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_logic_gates = 0;
  std::size_t num_leads = 0;
  std::uint32_t depth = 0;  // max level

  /// Gate counts indexed by GateType's underlying value.
  std::array<std::size_t, 8> gates_by_type{};

  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
  double avg_fanin = 0.0;   // over logic gates
  double avg_fanout = 0.0;  // over PIs + logic gates

  BigUint physical_paths;
  BigUint logical_paths;
};

/// Computes the full statistics block (includes a path count pass).
CircuitStats compute_stats(const Circuit& circuit);

/// Multi-line human-readable rendering.
std::string stats_to_string(const CircuitStats& stats);

/// Multi-line rendering of a classification run's observability block:
/// one line per worker (seeds run, steals, DFS work units, busy time)
/// plus totals and parallel utilization (sum of busy time over wall
/// time).  Returns a one-line serial note when `result.worker_stats`
/// is empty.
std::string classify_run_stats_to_string(const ClassifyResult& result);

}  // namespace rd
