// Reduced ordered binary decision diagrams.
//
// A compact, self-contained ROBDD package: unique table for canonical
// nodes, memoized ITE, the usual boolean connectives, satisfiability
// witnesses and model counting.  It exists to give the library *exact*
// functional reasoning at a scale the 2^n enumeration sweeps in
// core/exact.h cannot reach: exact functional sensitizability checks
// (core/exact_bdd.h) and combinational equivalence checking used to
// validate the synthesizer and the leaf-dag baseline.
//
// Nodes are arena-allocated and never freed (no reference counting or
// garbage collection); a configurable node limit aborts runaway
// constructions instead, which callers treat as "answer unknown".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/biguint.h"
#include "util/exec_guard.h"

namespace rd {

/// Handle to a BDD node within a BddManager (0 = false, 1 = true).
using BddRef = std::uint32_t;

constexpr BddRef kBddFalse = 0;
constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  /// `num_vars` fixes the variable order: variable i is tested at
  /// level i (smaller index closer to the root).
  explicit BddManager(std::uint32_t num_vars,
                      std::size_t max_nodes = 1u << 22);

  std::uint32_t num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// The function of a single variable.
  BddRef var(std::uint32_t index);
  /// Its complement.
  BddRef nvar(std::uint32_t index);

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_not(BddRef f) { return ite(f, kBddFalse, kBddTrue); }
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, kBddFalse); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, kBddTrue, g); }
  BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }
  BddRef bdd_xnor(BddRef f, BddRef g) { return ite(f, g, bdd_not(g)); }

  /// f with variable `index` fixed to `value`.
  BddRef restrict_var(BddRef f, std::uint32_t index, bool value);

  /// Evaluates f under a complete assignment.
  bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

  /// A satisfying assignment (unconstrained variables default false),
  /// or nullopt if f == false.
  std::optional<std::vector<bool>> any_sat(BddRef f) const;

  /// Number of satisfying assignments over all num_vars variables.
  BigUint sat_count(BddRef f) const;

  /// Thrown (as std::runtime_error) when max_nodes is exceeded.
  struct NodeLimitExceeded;

  /// Attaches an execution guard: every allocated node charges one
  /// unit of work and its approximate arena footprint, and a tripped
  /// guard makes make_node throw GuardTrippedError (callers treat it
  /// like NodeLimitExceeded: answer unknown).  Pass nullptr to detach.
  void set_guard(ExecGuard* guard) { guard_ = guard; }

 private:
  struct Node {
    std::uint32_t var;  // level; terminals use num_vars_
    BddRef lo;
    BddRef hi;
  };

  std::uint32_t level(BddRef f) const { return nodes_[f].var; }
  BddRef make_node(std::uint32_t var, BddRef lo, BddRef hi);

  std::uint32_t num_vars_;
  std::size_t max_nodes_;
  ExecGuard* guard_ = nullptr;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, BddRef> unique_;
  std::unordered_map<std::uint64_t, BddRef> ite_cache_;
};

}  // namespace rd
