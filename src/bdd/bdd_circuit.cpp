#include "bdd/bdd_circuit.h"

#include <stdexcept>
#include <unordered_map>

#include "paths/counting.h"

namespace rd {

CircuitBdds::CircuitBdds(const Circuit& circuit, BddManager& manager)
    : circuit_(&circuit), manager_(&manager) {
  if (manager.num_vars() < circuit.inputs().size())
    throw std::invalid_argument("CircuitBdds: manager has too few variables");
  refs_.assign(circuit.num_gates(), kBddFalse);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
    refs_[circuit.inputs()[i]] = manager.var(static_cast<std::uint32_t>(i));
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    switch (gate.type) {
      case GateType::kInput:
        break;
      case GateType::kOutput:
      case GateType::kBuf:
        refs_[id] = refs_[gate.fanins[0]];
        break;
      case GateType::kNot:
        refs_[id] = manager.bdd_not(refs_[gate.fanins[0]]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        BddRef acc = kBddTrue;
        for (GateId fanin : gate.fanins)
          acc = manager.bdd_and(acc, refs_[fanin]);
        refs_[id] = gate.type == GateType::kNand ? manager.bdd_not(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        BddRef acc = kBddFalse;
        for (GateId fanin : gate.fanins)
          acc = manager.bdd_or(acc, refs_[fanin]);
        refs_[id] = gate.type == GateType::kNor ? manager.bdd_not(acc) : acc;
        break;
      }
    }
  }
}

std::optional<CircuitBdds> CircuitBdds::try_build(const Circuit& circuit,
                                                  BddManager& manager) {
  try {
    return CircuitBdds(circuit, manager);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

std::optional<bool> check_equivalent(const Circuit& a, const Circuit& b,
                                     std::size_t max_nodes) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size())
    return false;
  // Match b's PIs to a's by name.
  std::unordered_map<std::string, std::size_t> a_pi_index;
  for (std::size_t i = 0; i < a.inputs().size(); ++i)
    a_pi_index.emplace(a.gate(a.inputs()[i]).name, i);

  BddManager manager(static_cast<std::uint32_t>(a.inputs().size()), max_nodes);
  try {
    const CircuitBdds a_bdds(a, manager);
    // Build b's gate BDDs with remapped variables.
    std::vector<BddRef> b_refs(b.num_gates(), kBddFalse);
    for (GateId pi : b.inputs()) {
      const auto it = a_pi_index.find(b.gate(pi).name);
      if (it == a_pi_index.end()) return false;  // PI name mismatch
      b_refs[pi] = manager.var(static_cast<std::uint32_t>(it->second));
    }
    for (GateId id : b.topo_order()) {
      const Gate& gate = b.gate(id);
      switch (gate.type) {
        case GateType::kInput:
          break;
        case GateType::kOutput:
        case GateType::kBuf:
          b_refs[id] = b_refs[gate.fanins[0]];
          break;
        case GateType::kNot:
          b_refs[id] = manager.bdd_not(b_refs[gate.fanins[0]]);
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          BddRef acc = kBddTrue;
          for (GateId fanin : gate.fanins)
            acc = manager.bdd_and(acc, b_refs[fanin]);
          b_refs[id] =
              gate.type == GateType::kNand ? manager.bdd_not(acc) : acc;
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          BddRef acc = kBddFalse;
          for (GateId fanin : gate.fanins)
            acc = manager.bdd_or(acc, b_refs[fanin]);
          b_refs[id] =
              gate.type == GateType::kNor ? manager.bdd_not(acc) : acc;
          break;
        }
      }
    }
    // Match POs by name.
    std::unordered_map<std::string, BddRef> b_po;
    for (GateId po : b.outputs()) b_po.emplace(b.gate(po).name, b_refs[po]);
    for (GateId po : a.outputs()) {
      const auto it = b_po.find(a.gate(po).name);
      if (it == b_po.end()) return false;
      if (a_bdds.gate(po) != it->second) return false;  // canonical compare
    }
    return true;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

std::optional<bool> bdd_sensitizable(const Circuit& circuit,
                                     const CircuitBdds& bdds,
                                     const LogicalPath& path,
                                     Criterion criterion,
                                     const InputSort* sort) {
  if (criterion == Criterion::kInputSort && sort == nullptr)
    throw std::invalid_argument("bdd_sensitizable: kInputSort needs a sort");
  BddManager& manager = bdds.manager();
  try {
    // Condition: the PI takes its final value...
    BddRef constraint = manager.bdd_xnor(
        bdds.gate(path_pi(circuit, path.path)),
        path.final_pi_value ? kBddTrue : kBddFalse);
    // ...and the criterion's side-input conditions hold.  The on-path
    // stable values are parity-determined.
    bool on_path_value = path.final_pi_value;
    for (LeadId lead_id : path.path.leads) {
      const Lead& lead = circuit.lead(lead_id);
      const Gate& sink = circuit.gate(lead.sink);
      if (has_controlling_value(sink.type)) {
        const bool nc = noncontrolling_value(sink.type);
        for (std::uint32_t pin = 0; pin < sink.fanins.size(); ++pin) {
          if (pin == lead.pin) continue;
          bool require_nc = false;
          if (on_path_value == nc) {
            require_nc = true;  // (FU2)/(NR2)/(pi2)
          } else {
            switch (criterion) {
              case Criterion::kFunctionalSensitizable:
                require_nc = false;
                break;
              case Criterion::kNonRobust:
                require_nc = true;
                break;
              case Criterion::kInputSort:
                require_nc = sort->before(lead.sink, pin, lead.pin);
                break;
            }
          }
          if (!require_nc) continue;
          constraint = manager.bdd_and(
              constraint,
              manager.bdd_xnor(bdds.gate(sink.fanins[pin]),
                               nc ? kBddTrue : kBddFalse));
          if (constraint == kBddFalse) return false;
        }
      }
      if (inverts(sink.type)) on_path_value = !on_path_value;
    }
    return constraint != kBddFalse;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> bdd_exact_kept_count(const Circuit& circuit,
                                                  Criterion criterion,
                                                  const InputSort* sort,
                                                  std::uint64_t max_paths,
                                                  std::size_t max_nodes) {
  BddManager manager(static_cast<std::uint32_t>(circuit.inputs().size()),
                     max_nodes);
  const auto bdds = CircuitBdds::try_build(circuit, manager);
  if (!bdds.has_value()) return std::nullopt;

  std::uint64_t kept = 0;
  bool overrun = false;
  const bool complete = enumerate_paths(
      circuit,
      [&](const PhysicalPath& physical) {
        for (const bool final_value : {false, true}) {
          const LogicalPath logical{physical, final_value};
          const auto verdict =
              bdd_sensitizable(circuit, *bdds, logical, criterion, sort);
          if (!verdict.has_value()) {
            overrun = true;
            return;
          }
          if (*verdict) ++kept;
        }
      },
      max_paths / 2 + 1);
  if (!complete || overrun) return std::nullopt;
  return kept;
}

}  // namespace rd
