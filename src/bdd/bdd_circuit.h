// Circuit-to-BDD construction and BDD-backed circuit reasoning:
// per-gate BDDs under the PI variable order, combinational equivalence
// checking, and exact logical-path sensitizability (the BDD-exact
// counterpart of the classifier's local-implication approximation).
#pragma once

#include <optional>
#include <vector>

#include "bdd/bdd.h"
#include "core/classify.h"
#include "netlist/circuit.h"
#include "paths/path.h"

namespace rd {

/// Per-gate BDDs for a circuit (variable i = PI i, in circuit.inputs()
/// order).  Construction is aborted cleanly on the manager's node
/// limit.
class CircuitBdds {
 public:
  /// Builds BDDs for every gate; throws std::runtime_error when the
  /// node limit is hit (use `try_build` for an optional-style API).
  CircuitBdds(const Circuit& circuit, BddManager& manager);

  /// nullopt on node-limit overrun.
  static std::optional<CircuitBdds> try_build(const Circuit& circuit,
                                              BddManager& manager);

  BddRef gate(GateId id) const { return refs_[id]; }
  BddManager& manager() const { return *manager_; }

 private:
  CircuitBdds() = default;
  const Circuit* circuit_ = nullptr;
  BddManager* manager_ = nullptr;
  std::vector<BddRef> refs_;
};

/// Exact combinational equivalence of two circuits with identically
/// *named* PIs/POs (names are matched, order-independent).  Returns
/// nullopt if a node limit is exceeded.
std::optional<bool> check_equivalent(const Circuit& a, const Circuit& b,
                                     std::size_t max_nodes = 1u << 21);

/// Exact sensitizability of one logical path under FS / NR / (π1)-(π3)
/// conditions, decided by BDD satisfiability (no 2^n sweep).  Returns
/// nullopt on node-limit overrun.
std::optional<bool> bdd_sensitizable(const Circuit& circuit,
                                     const CircuitBdds& bdds,
                                     const LogicalPath& path,
                                     Criterion criterion,
                                     const InputSort* sort = nullptr);

/// Exact kept-path count for a criterion by explicit path enumeration
/// with a per-path BDD check.  Caps at `max_paths` enumerated paths
/// (returns nullopt beyond, or on node-limit overrun).
std::optional<std::uint64_t> bdd_exact_kept_count(
    const Circuit& circuit, Criterion criterion,
    const InputSort* sort = nullptr, std::uint64_t max_paths = 1u << 22,
    std::size_t max_nodes = 1u << 21);

}  // namespace rd
