#include "bdd/bdd.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace rd {

struct BddManager::NodeLimitExceeded : std::runtime_error {
  NodeLimitExceeded() : std::runtime_error("BddManager: node limit exceeded") {}
};

namespace {
// Refs and variable levels are packed three-per-64-bit-key, which caps
// both at 2^21.
constexpr std::size_t kPackBits = 21;
constexpr std::size_t kPackLimit = std::size_t{1} << kPackBits;

std::uint64_t pack(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return (static_cast<std::uint64_t>(a) << (2 * kPackBits)) |
         (static_cast<std::uint64_t>(b) << kPackBits) |
         static_cast<std::uint64_t>(c);
}
}  // namespace

BddManager::BddManager(std::uint32_t num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(std::min(max_nodes, kPackLimit)) {
  if (num_vars >= kPackLimit)
    throw std::invalid_argument("BddManager: too many variables");
  nodes_.push_back(Node{num_vars_, kBddFalse, kBddFalse});  // 0 = false
  nodes_.push_back(Node{num_vars_, kBddTrue, kBddTrue});    // 1 = true
}

BddRef BddManager::make_node(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const std::uint64_t key = pack(var, lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) throw NodeLimitExceeded{};
  if (guard_ != nullptr) {
    // Arena footprint per node: the Node itself plus the unique-table
    // entry (key, ref, bucket overhead) — close enough for a ceiling.
    guard_->add_memory(sizeof(Node) + 2 * sizeof(std::uint64_t));
    if (!guard_->check()) throw GuardTrippedError(guard_->reason());
  }
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(std::uint32_t index) {
  if (index >= num_vars_) throw std::invalid_argument("BddManager: bad var");
  return make_node(index, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(std::uint32_t index) {
  if (index >= num_vars_) throw std::invalid_argument("BddManager: bad var");
  return make_node(index, kBddTrue, kBddFalse);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  const std::uint64_t key = pack(f, g, h);
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t top =
      std::min({level(f), level(g), level(h)});
  auto cofactor = [&](BddRef node, bool positive) {
    if (level(node) != top) return node;
    return positive ? nodes_[node].hi : nodes_[node].lo;
  };
  const BddRef lo = ite(cofactor(f, false), cofactor(g, false),
                        cofactor(h, false));
  const BddRef hi =
      ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::restrict_var(BddRef f, std::uint32_t index, bool value) {
  if (index >= num_vars_) throw std::invalid_argument("BddManager: bad var");
  // ite(x, f|x=1, f|x=0) == f, so f|x=v is computable by recursion; a
  // local memo keeps it linear in the BDD size.
  std::unordered_map<BddRef, BddRef> memo;
  std::function<BddRef(BddRef)> walk = [&](BddRef node) -> BddRef {
    if (level(node) > index) return node;  // index not in support below
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    BddRef result;
    if (level(node) == index) {
      result = value ? nodes_[node].hi : nodes_[node].lo;
    } else {
      result = make_node(level(node), walk(nodes_[node].lo),
                         walk(nodes_[node].hi));
    }
    memo.emplace(node, result);
    return result;
  };
  return walk(f);
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_)
    throw std::invalid_argument("BddManager: assignment arity mismatch");
  while (f != kBddFalse && f != kBddTrue)
    f = assignment[nodes_[f].var] ? nodes_[f].hi : nodes_[f].lo;
  return f == kBddTrue;
}

std::optional<std::vector<bool>> BddManager::any_sat(BddRef f) const {
  if (f == kBddFalse) return std::nullopt;
  std::vector<bool> assignment(num_vars_, false);
  while (f != kBddTrue) {
    const Node& node = nodes_[f];
    if (node.lo != kBddFalse) {
      assignment[node.var] = false;
      f = node.lo;
    } else {
      assignment[node.var] = true;
      f = node.hi;
    }
  }
  return assignment;
}

BigUint BddManager::sat_count(BddRef f) const {
  // Powers of two by level distance.
  std::vector<BigUint> power(num_vars_ + 1);
  power[0] = BigUint(1);
  for (std::uint32_t i = 1; i <= num_vars_; ++i) {
    power[i] = power[i - 1];
    power[i] *= 2u;
  }
  std::unordered_map<BddRef, BigUint> memo;
  std::function<BigUint(BddRef)> count = [&](BddRef node) -> BigUint {
    if (node == kBddFalse) return BigUint(0);
    if (node == kBddTrue) return BigUint(1);
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[node];
    BigUint lo_count = count(n.lo);
    lo_count *= power[level(n.lo) - n.var - 1];
    BigUint hi_count = count(n.hi);
    hi_count *= power[level(n.hi) - n.var - 1];
    BigUint total = lo_count + hi_count;
    memo.emplace(node, total);
    return total;
  };
  BigUint total = count(f);
  total *= power[level(f)];  // variables above the root are free
  return total;
}

}  // namespace rd
