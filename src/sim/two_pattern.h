// Two-pattern tester model: apply v1, let the circuit settle, switch
// to v2 at t=0, and *sample the primary outputs at the clock period τ*
// — the physical procedure a robust test abstracts (Section II: "from
// the fact that C_m does (does not) operate correctly for this test
// sequence under clock period τ it can be concluded that the delay ...
// is ≤ τ (> τ)").
//
// Together with a delay-fault injection helper (inflate the delay of
// one path's leads) this lets the test suite validate the *semantics*
// of generated tests dynamically: a robust test must flag the fault
// for every delay assignment of the rest of the circuit.
#pragma once

#include <vector>

#include "netlist/circuit.h"
#include "paths/path.h"
#include "sim/timed_sim.h"

namespace rd {

struct TwoPatternResult {
  /// PO values observed at the sampling instant τ (index-aligned with
  /// circuit.outputs()).
  std::vector<bool> sampled;

  /// PO values after full settling (the functional values under v2).
  std::vector<bool> settled;

  /// True if any PO was still changing after τ (sampled != settled or
  /// a later event existed).
  bool late = false;

  /// False when the underlying timed simulation hit its event budget
  /// (oscillation suspected); `late` is then conservatively true —
  /// a circuit that never quiesces certainly fails the at-speed test.
  bool completed = true;
};

/// Runs the two-pattern experiment.  v1 is applied and fully settled
/// (from an all-zero initial state, which is irrelevant after
/// settling); v2 is applied at t=0 and the POs are sampled at `tau`.
TwoPatternResult apply_two_pattern(const Circuit& circuit,
                                   const DelayModel& delays,
                                   const std::vector<bool>& v1,
                                   const std::vector<bool>& v2, double tau);

/// Returns a copy of `delays` with `extra` added to every lead of the
/// given path (modelling a distributed delay defect along it — the
/// path delay fault under test).
DelayModel inject_path_delay(const Circuit& circuit, const DelayModel& delays,
                             const PhysicalPath& path, double extra);

}  // namespace rd
