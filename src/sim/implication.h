// Trail-based three-valued implication engine.
//
// This is the workhorse behind the paper's "local implications" check
// (Algorithm 2, following Cheng & Chen [2]): the RD-set classifiers
// assert stable values on gate outputs — the on-path PI value and the
// side-input constraints (FU2)/(NR2)/(π2)(π3) — and this engine
// propagates the direct (local) logic consequences forward and backward
// through the circuit.  A derived conflict proves no input vector can
// satisfy the constraints, so the path segment under consideration is
// robust dependent; no conflict keeps the path conservatively.
//
// Assignments are recorded on a trail so a classifier's depth-first
// search can cheaply undo to any earlier mark, SAT-solver style.
//
// Since a lead always carries its driver gate's output value, values
// live on gate outputs only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "sim/value.h"

namespace rd {

/// Cumulative event counters of one ImplicationEngine.  Plain uint64
/// increments on the hot path — snapshotted into the metrics registry
/// at run granularity by the orchestration layer.  Counts are
/// deterministic for a fixed assignment sequence; engines owned by
/// different workers are merged by summation (commutative).
struct ImplicationStats {
  std::uint64_t assignments = 0;     // values placed on the trail
  std::uint64_t propagations = 0;    // gates examined by propagate()
  std::uint64_t conflicts = 0;       // contradictions found
  std::uint64_t backward = 0;        // values derived by backward reasoning

  void merge(const ImplicationStats& other) {
    assignments += other.assignments;
    propagations += other.propagations;
    conflicts += other.conflicts;
    backward += other.backward;
  }
};

class ImplicationEngine {
 public:
  /// `backward_implications` can be disabled to measure how much of
  /// the RD identification quality comes from backward reasoning (the
  /// ablation benchmark); production callers leave it on.
  explicit ImplicationEngine(const Circuit& circuit,
                             bool backward_implications = true);

  /// Asserts gate `id`'s stable output value and propagates local
  /// implications.  Returns false on conflict.  In both cases every
  /// value set is recorded on the trail; after a conflict the caller
  /// undoes to its mark before continuing.
  bool assign(GateId id, Value3 value);

  /// Current trail position, to be passed to undo_to later.
  std::size_t mark() const { return trail_.size(); }

  /// Undoes all assignments made after `mark`.
  void undo_to(std::size_t mark);

  /// Current value of a gate's output (kUnknown if unassigned).
  Value3 value(GateId id) const { return values_[id]; }

  /// Number of gates whose value is currently known (for diagnostics).
  std::size_t num_assigned() const { return trail_.size(); }

  /// Cumulative event counters since construction (undo does not roll
  /// them back — they measure work done, not state held).
  const ImplicationStats& stats() const { return stats_; }

 private:
  /// Records a value (must currently be unknown) and schedules
  /// re-examination of the gate and its sinks.
  void set_value(GateId id, Value3 value);

  /// Examines one gate: forward-evaluates it and applies backward
  /// implications from its output to its inputs.  Returns false on
  /// conflict.
  bool examine(GateId id);

  /// Drains the propagation queue.  Returns false on conflict.
  bool propagate();

  const Circuit* circuit_;
  bool backward_implications_;
  std::vector<Value3> values_;
  std::vector<GateId> trail_;
  std::vector<GateId> queue_;
  std::size_t queue_head_ = 0;
  ImplicationStats stats_;
};

}  // namespace rd
