// Trail-based three-valued implication engine over a compiled circuit.
//
// This is the workhorse behind the paper's "local implications" check
// (Algorithm 2, following Cheng & Chen [2]): the RD-set classifiers
// assert stable values on gate outputs — the on-path PI value and the
// side-input constraints (FU2)/(NR2)/(π2)(π3) — and this engine
// propagates the direct (local) logic consequences forward and backward
// through the circuit.  A derived conflict proves no input vector can
// satisfy the constraints, so the path segment under consideration is
// robust dependent; no conflict keeps the path conservatively.
//
// Assignments are recorded on a trail so a classifier's depth-first
// search can cheaply undo to any earlier mark, SAT-solver style.
//
// Since a lead always carries its driver gate's output value, values
// live on gate outputs only.
//
// Hot-path layout (the compiled execution layer, see DESIGN.md §9):
//
//   * the engine walks a CompiledCircuit — flat CSR fanin/fanout
//     arrays plus 8-byte predecoded GateSemantics — instead of the
//     pointer-chasing Gate objects of the analysis netlist;
//   * values are epoch-stamped: a value is known iff its stamp equals
//     the engine's current epoch, so reset() is a counter bump plus a
//     trail clear (O(1)) instead of an O(V) wipe.  Thousands of DFS
//     seeds per classification reset this engine; none of them pays a
//     per-gate clear;
//   * gate examination is counter-based, watched-literal style: each
//     gate carries epoch-stamped counts of its known and controlling
//     fanins, maintained incrementally by set_value/rollback, so
//     examine() decides forward/backward implications from two O(1)
//     loads instead of re-scanning the fanin list on every queue pop
//     (the pre-compilation engine's dominant cost — most pops derive
//     nothing, and paid a full scan to find that out).  The fanin scan
//     survives only inside the two backward rules that need fanin
//     *identities*, which fire comparatively rarely.
//
// The event stream (ImplicationStats) and every derived value are
// bit-identical to the frozen pre-compilation engine
// (sim/implication_reference.h); tests/compiled_test.cpp enforces it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/circuit.h"
#include "netlist/compiled.h"
#include "sim/value.h"

namespace rd {

class StaticClosure;

/// Cumulative event counters of one ImplicationEngine.  Plain uint64
/// increments on the hot path — snapshotted into the metrics registry
/// at run granularity by the orchestration layer.  Counts are
/// deterministic for a fixed assignment sequence; engines owned by
/// different workers are merged by summation (commutative).
struct ImplicationStats {
  std::uint64_t assignments = 0;     // values placed on the trail
  std::uint64_t propagations = 0;    // gates examined by propagate()
  std::uint64_t conflicts = 0;       // contradictions found
  std::uint64_t backward = 0;        // values derived by backward reasoning

  void merge(const ImplicationStats& other) {
    assignments += other.assignments;
    propagations += other.propagations;
    conflicts += other.conflicts;
    backward += other.backward;
  }

  /// Counter deltas accumulated since the `before` snapshot (used to
  /// record a replayable prefix, see ImplicationEngine::replay_stats).
  ImplicationStats delta_since(const ImplicationStats& before) const {
    return ImplicationStats{assignments - before.assignments,
                            propagations - before.propagations,
                            conflicts - before.conflicts,
                            backward - before.backward};
  }

  bool operator==(const ImplicationStats&) const = default;
};

class ImplicationEngine {
 public:
  /// Runs over a caller-owned CompiledCircuit (shared read-only across
  /// engines/threads; must outlive this engine).  This is the form the
  /// classification workers use — the compile cost is paid once per
  /// run, not once per worker.
  ///
  /// `backward_implications` can be disabled to measure how much of
  /// the RD identification quality comes from backward reasoning (the
  /// ablation benchmark); production callers leave it on.
  explicit ImplicationEngine(const CompiledCircuit& compiled,
                             bool backward_implications = true);

  /// Convenience for one-shot callers (ATPG search, single-path
  /// queries): compiles `circuit` privately.  Prefer the
  /// CompiledCircuit overload when several engines or repeated calls
  /// share one circuit.
  explicit ImplicationEngine(const Circuit& circuit,
                             bool backward_implications = true);

  /// Asserts gate `id`'s stable output value and propagates local
  /// implications.  Returns false on conflict.  In both cases every
  /// value set is recorded on the trail; after a conflict the caller
  /// undoes to its mark before continuing.
  bool assign(GateId id, Value3 value);

  /// Current trail position (a watermark), to be passed to rollback
  /// later.  Watermarks nest: any prefix of the trail is a valid
  /// rollback target until the next reset() invalidates them all.
  std::size_t mark() const { return trail_size_; }

  /// Undoes all assignments made after watermark `mark`, in O(undone):
  /// descending to a sibling subtree costs only the divergent suffix,
  /// never a full reset + replay.  Stats are cumulative and unaffected
  /// (they measure work done, not state held).
  void rollback(std::size_t mark);

  /// Legacy spelling of rollback(mark), kept because the frozen
  /// ReferenceImplicationEngine (whose API must not change) still uses
  /// it and differential drivers template over both engines.
  void undo_to(std::size_t mark) { rollback(mark); }

  /// A watermark paired with the counter snapshot taken alongside it.
  /// checkpoint()/rollback(Checkpoint) bracket *disownable* work: state
  /// and charges both return to the capture point — the primitive
  /// behind charge-free prefix replay when a worker adopts a stolen
  /// path-tree node (core/classify_dfs.h run_subtree).
  struct Checkpoint {
    std::size_t trail_mark = 0;
    ImplicationStats stats;
  };

  Checkpoint checkpoint() const { return Checkpoint{trail_size_, stats_}; }

  /// Undoes state *and* counters back to a checkpoint: the work done
  /// since capture is disowned as if it never ran.
  void rollback(const Checkpoint& at) {
    rollback(at.trail_mark);
    stats_ = at.stats;
  }

  /// Forgets every assignment in O(1) (epoch bump + trail clear).
  /// Invalidates outstanding marks: after reset(), mark() == 0.
  /// Stats are cumulative and unaffected, exactly like rollback.
  void reset();

  /// Current value of a gate's output (kUnknown if unassigned).
  Value3 value(GateId id) const {
    const std::uint64_t half = states_[id].value_half;
    return static_cast<std::uint32_t>(half) == epoch_ ? unpack_value(half)
                                                      : Value3::kUnknown;
  }

  /// Number of gates whose value is currently known (for diagnostics).
  std::size_t num_assigned() const { return trail_size_; }

  /// Cumulative event counters since construction (undo does not roll
  /// them back — they measure work done, not state held).
  const ImplicationStats& stats() const { return stats_; }

  /// Credits the counters of work that was *not* re-executed because
  /// its outcome was cached (the classifier's shared PI-assignment
  /// prefix).  Keeps the cumulative event stream bit-identical to an
  /// engine that re-ran the assignment sequence from scratch.
  void replay_stats(const ImplicationStats& delta) { stats_.merge(delta); }

  /// Inverse of replay_stats: rewinds the counters to `snapshot`
  /// without touching the trail.  This disowns charges for work that
  /// *was* physically executed but is logically cached — a thief
  /// replaying an already-charged path-tree prefix keeps the state the
  /// replay built while the charge stream stays bit-identical to the
  /// serial engine, which established that prefix exactly once.
  void restore_stats(const ImplicationStats& snapshot) { stats_ = snapshot; }

  const CompiledCircuit& compiled() const { return *compiled_; }

  /// Attaches a prebuilt static implication closure (sim/closure.h):
  /// assign() then serves footprint-disjoint literals by installing the
  /// row recorded at compile time — same trail, same stats, same
  /// verdict as the event drain, minus the events.  The closure must be
  /// built over this engine's CompiledCircuit with the same
  /// backward_implications mode; a mismatched closure is ignored (the
  /// engine simply stays scalar).  Pass nullptr to detach.  The caller
  /// keeps ownership; the closure must outlive the attachment.
  void attach_closure(const StaticClosure* closure);
  const StaticClosure* closure() const { return closure_; }

  /// Assigns served by a closure-row install / by the event drain while
  /// a closure was attached.  Diagnostics only — not part of the
  /// bit-identical ImplicationStats contract.
  std::uint64_t closure_hits() const { return closure_hits_; }
  std::uint64_t closure_misses() const { return closure_misses_; }

  /// Read-only view of the trail (the closure builder and tests):
  /// entries [0, num_assigned()), gate id in the low 32 bits, the
  /// assigned Value3 in bits 32..39.
  const std::uint64_t* trail_data() const { return trail_; }
  static GateId trail_entry_gate(std::uint64_t entry) {
    return static_cast<GateId>(entry);
  }
  static Value3 trail_entry_value(std::uint64_t entry) {
    return unpack_value(entry);
  }

 private:
  /// Closure fast path: when the attached closure's row for (id, value)
  /// has a footprint disjoint from every current assignment, installs
  /// the recorded drain (trail entries, sink tallies, stats delta) and
  /// sets *ok to the recorded verdict.  Returns false on a miss — the
  /// caller falls through to the scalar drain, which is always exact.
  bool try_closure(GateId id, Value3 value, bool* ok);
  /// Records a value (must currently be unknown) and schedules
  /// re-examination of the gate and its sinks.
  void set_value(GateId id, Value3 value);

  /// Force-inlined body of set_value for the hot forward-derivation
  /// sites inside examine(); set_value is its out-of-line wrapper for
  /// the cold sites.
  void set_value_inline(GateId id, Value3 value);

  /// Examines one gate (given as its packed GateWord, the queue's
  /// element type): forward-evaluates it and applies backward
  /// implications from its output to its inputs.  Returns false on
  /// conflict.  Force-inlined into propagate()'s drain loop.
  bool examine(GateWord word);

  /// Drains the propagation queue.  Returns false on conflict.
  bool propagate();

  // The complete epoch-stamped dynamic state of one gate, packed into
  // 16 aligned bytes so examine() reads it in one cache access.  Each
  // half is a single 64-bit word written and read whole — set_value
  // stores a freshly-set state and the sink is typically popped and
  // examined a handful of instructions later, so the store must
  // forward cleanly to the load (two narrow stores feeding one wide
  // load stall the pipeline on every such pop).
  //
  //   * value_half: epoch stamp in the low 32 bits, the Value3 in
  //     bits 32..39.  The value is meaningful iff the stamp equals the
  //     engine's current epoch (epoch 0 is "never assigned").
  //   * counter_half: epoch stamp in the low 32 bits, the fanin
  //     tallies in the high 32 — known-valued pins in bits 32..47,
  //     controlling-valued pins in bits 48..63 (pins, not distinct
  //     gates: a driver on two pins counts twice, matching a fanin
  //     scan).  Meaningful iff the stamp matches, else all-zero.  The
  //     packing lets set_value and rollback maintain both counts with
  //     a single load-add-store per sink.
  //
  // The two stamps are independent: counters go live when a *fanin*
  // is first assigned, the value when the gate itself is.
  struct alignas(16) GateState {
    std::uint64_t value_half = 0;
    std::uint64_t counter_half = 0;
  };

  static std::uint64_t pack_value(std::uint32_t epoch, Value3 value) {
    return epoch |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(value))
            << 32);
  }
  static Value3 unpack_value(std::uint64_t half) {
    return static_cast<Value3>(static_cast<std::uint8_t>(half >> 32));
  }

  /// The counter_half increment contributed by one assigned fanin pin:
  /// 1 known pin, plus 1 controlling pin iff it carries `ctrl`.
  static std::uint64_t tally_delta(Value3 value, Value3 ctrl) {
    return (1ull << 32) +
           (static_cast<std::uint64_t>(value == ctrl) << 48);
  }

  std::unique_ptr<CompiledCircuit> owned_;  // only for the Circuit ctor
  const CompiledCircuit* compiled_;
  bool backward_implications_;
  const StaticClosure* closure_ = nullptr;
  std::uint64_t closure_hits_ = 0;
  std::uint64_t closure_misses_ = 0;

  std::vector<GateState> states_;
  std::uint32_t epoch_ = 1;

  // Trail and propagation queue as fixed-capacity buffers with manual
  // cursors (no per-push capacity branch).  The trail holds at most
  // one entry per gate; one assign() pushes at most 1 + Σ(1 +
  // fanouts(g)) = 1 + num_gates + num_leads queue entries, since
  // set_value fires at most once per gate between undos.  A trail
  // entry is a gate id (low 32 bits) packed with the value it was
  // assigned (bits 32..39, same shape as value_half), so rollback
  // rolls back sink tallies without re-reading the state record.
  // The queue holds packed GateWords (the fanout streams already carry
  // them), so a pop hands examine() the gate's full semantics without
  // an indexed load into the semantics table.
  // One backing allocation for both fixed-capacity buffers (the
  // classify path builds an engine per run; on microsecond circuits
  // every ctor malloc shows in bench_micro's small-circuit rows):
  // trail_ = scratch_[0 .. num_gates), queue_ = the rest.  The raw
  // pointers stay valid across vector moves (the heap buffer
  // transfers wholesale).
  std::vector<std::uint64_t> scratch_;
  std::uint64_t* trail_ = nullptr;
  GateWord* queue_ = nullptr;
  std::size_t trail_size_ = 0;
  std::size_t queue_head_ = 0;
  std::size_t queue_tail_ = 0;
  ImplicationStats stats_;
};

}  // namespace rd
