#include "sim/implication_bitpar.h"

namespace rd {

LaneImplicationEngine::LaneImplicationEngine(const CompiledCircuit& compiled,
                                             bool backward_implications,
                                             const ImplicationEngine* base)
    : compiled_(&compiled),
      backward_implications_(backward_implications),
      base_(base),
      planes_(compiled.num_gates()) {
  trail_.reserve(compiled.num_gates());
  queue_.reserve(compiled.num_gates() + compiled.num_leads() + 1);
}

void LaneImplicationEngine::begin_batch(LaneMask lanes) {
  // Unwind everything the previous batch set — the trail records every
  // plane write, so this restores all-unknown without touching the
  // (much larger) untouched remainder of planes_.
  rollback(0);
  batch_ = lanes;
  queue_.clear();
  queue_head_ = 0;
  assignments_.clear();
  propagations_.clear();
  conflicts_.clear();
  backward_.clear();
}

void LaneImplicationEngine::rollback(std::size_t mark) {
  while (trail_.size() > mark) {
    const TrailEntry entry = trail_.back();
    trail_.pop_back();
    LanePlanes& p = planes_[entry.gate];
    p.v0 &= ~entry.m0;
    p.v1 &= ~entry.m1;
  }
}

std::size_t LaneImplicationEngine::memory_bytes() const {
  return planes_.capacity() * sizeof(LanePlanes) +
         trail_.capacity() * sizeof(TrailEntry) +
         queue_.capacity() * sizeof(QueueEntry) + sizeof(*this);
}

void LaneImplicationEngine::set_value(GateId id, LaneMask m0, LaneMask m1) {
  const LaneMask m = m0 | m1;
  LanePlanes& p = planes_[id];
  p.v0 |= m0;
  p.v1 |= m1;
  trail_.push_back(TrailEntry{m0, m1, id});
  assignments_.add(m);
  queue_.push_back(QueueEntry{compiled_->gate_words()[id], m});
  const GateWord* sink = compiled_->fanout_sink_begin(id);
  const GateWord* const end = sink + compiled_->fanout_count(id);
  for (; sink != end; ++sink) queue_.push_back(QueueEntry{*sink, m});
}

LaneMask LaneImplicationEngine::assign(GateId id, Value3 value,
                                       LaneMask lanes) {
  if (!is_known(value)) return lanes;
  return assign_planes(id, value == Value3::kZero ? lanes : 0,
                       value == Value3::kOne ? lanes : 0);
}

LaneMask LaneImplicationEngine::assign_planes(GateId id, LaneMask zeros,
                                              LaneMask ones) {
  const LaneMask lanes = zeros | ones;
  const LanePlanes p = planes(id);
  const LaneMask known = p.known();
  // Already-known lanes resolve without propagation: equal values
  // succeed charge-free, different values are immediate conflicts —
  // the scalar assign()'s early-known fast path, lane-masked per
  // value group.
  LaneMask failed =
      (zeros & known & ~p.v0) | (ones & known & ~p.v1);
  const LaneMask run0 = zeros & ~known;
  const LaneMask run1 = ones & ~known;
  const LaneMask run = run0 | run1;
  if (run != 0) {
    queue_.clear();
    queue_head_ = 0;
    set_value(id, run0, run1);
    failed |= base_ != nullptr ? drain<true>(run) : drain<false>(run);
  }
  if (failed != 0) conflicts_.add(failed);
  return lanes & ~failed;
}

// Masked union-FIFO drain: each entry's live mask is the lanes it
// was pushed for minus the lanes that have since conflicted — the
// per-lane filtered pop sequence is exactly the lane's scalar
// drain, so charging pops by the live mask replicates the scalar
// propagation counter including the failing pop, and a dead
// lane's leftover entries (which its stopped scalar drain never
// reached) charge nothing.
template <bool kHasBase>
LaneMask LaneImplicationEngine::drain(LaneMask run) {
  LaneMask alive = run;
  LaneMask failed = 0;
  while (queue_head_ != queue_.size()) {
    const QueueEntry entry = queue_[queue_head_++];
    const LaneMask pm = entry.mask & alive;
    if (pm == 0) continue;
    propagations_.add(pm);
    const LaneMask conflicted = examine<kHasBase>(entry.word, pm);
    if (conflicted != 0) {
      alive &= ~conflicted;
      failed |= conflicted;
      if (alive == 0) break;
    }
  }
  return failed;
}

template <bool kHasBase>
LaneMask LaneImplicationEngine::examine(GateWord word, LaneMask m) {
  // Local plane read specialized on the overlay: the generic planes()
  // re-tests base_ on every fanin of the sweep below; here the test
  // is a template constant.
  const auto lp = [this](GateId g) {
    LanePlanes p = planes_[g];
    if constexpr (kHasBase) {
      const Value3 bv = base_->value(g);
      if (bv == Value3::kZero)
        p.v0 |= ~0ull;
      else if (bv == Value3::kOne)
        p.v1 |= ~0ull;
    }
    return p;
  };
  const GateId id = gate_word::id(word);
  const GateSemantics::Kind kind = gate_word::kind(word);
  if (kind == GateSemantics::Kind::kInput) return 0;

  const LanePlanes out = lp(id);
  const LaneMask out_known = out.known();

  if (kind == GateSemantics::Kind::kControlling) {
    // One fanin sweep stands in for the scalar engine's incremental
    // tallies, amortized over all live lanes: a controlling pin, the
    // all-known mask and the exactly-one-unknown-pin mask all fall
    // out of three running plane accumulators.
    const bool ctrl_one = gate_word::ctrl(word) == Value3::kOne;
    const std::uint32_t n = gate_word::fanin_count(word);
    const GateId* const fanin = compiled_->fanin_begin(id);
    LaneMask any_ctrl = 0;
    LaneMask u_any = 0;   // lanes with >= 1 unknown pin
    LaneMask u_multi = 0; // lanes with >= 2 unknown pins
    for (std::uint32_t i = 0; i < n; ++i) {
      const LanePlanes f = lp(fanin[i]);
      any_ctrl |= ctrl_one ? f.v1 : f.v0;
      const LaneMask u = ~f.known();
      u_multi |= u_any & u;
      u_any |= u;
    }
    const LaneMask all_known = ~u_any;
    const LaneMask forced = any_ctrl | all_known;

    // Forced-output planes: a controlling pin forces out_controlled
    // (winning over all-known, matching the scalar rule order), an
    // all-known non-controlling fanin forces out_noncontrolled.
    const bool oc_one = gate_word::out_controlled(word) == Value3::kOne;
    const bool onc_one =
        gate_word::out_noncontrolled(word) == Value3::kOne;
    const LaneMask via_nc = all_known & ~any_ctrl;
    const LaneMask e0 = (oc_one ? 0 : any_ctrl) | (onc_one ? 0 : via_nc);
    const LaneMask e1 = (oc_one ? any_ctrl : 0) | (onc_one ? via_nc : 0);

    const LaneMask act_forward = m & forced & ~out_known;
    if (act_forward != 0)
      set_value(id, e0 & act_forward, e1 & act_forward);
    const LaneMask conflict =
        m & forced & out_known & ((out.v0 & e1) | (out.v1 & e0));

    if (backward_implications_) {
      const LaneMask act_backward = m & out_known & ~forced;
      if (act_backward != 0) {
        const LaneMask out_is_nc = onc_one ? out.v1 : out.v0;
        const LaneMask rule_a = act_backward & out_is_nc;
        // Output is the controlled value with no controlling pin
        // known: only decisive with exactly one unknown pin.
        LaneMask rule_b = act_backward & ~out_is_nc & u_any & ~u_multi;
        const bool nc_one =
            gate_word::noncontrolling(word) == Value3::kOne;
        if (rule_a != 0) {
          // Every unknown pin becomes non-controlling, in pin order
          // (the scalar loop's charge and push order; re-reading the
          // planes per pin makes a duplicate-pin driver derive once).
          for (std::uint32_t i = 0; i < n; ++i) {
            const LaneMask mf = rule_a & ~lp(fanin[i]).known();
            if (mf != 0) {
              backward_.add(mf);
              set_value(fanin[i], nc_one ? 0 : mf, nc_one ? mf : 0);
            }
          }
        }
        if (rule_b != 0) {
          for (std::uint32_t i = 0; i < n && rule_b != 0; ++i) {
            const LaneMask mf = rule_b & ~lp(fanin[i]).known();
            if (mf != 0) {
              backward_.add(mf);
              set_value(fanin[i], ctrl_one ? 0 : mf, ctrl_one ? mf : 0);
              rule_b &= ~mf;
            }
          }
        }
      }
    }
    return conflict;
  }

  // Single-input gates: value equivalence modulo inversion.
  const bool inverting = kind == GateSemantics::Kind::kSingleInv;
  const GateId source = compiled_->single_sources()[id];
  const LanePlanes in = lp(source);
  const LaneMask in_known = in.known();
  const LaneMask i0 = inverting ? in.v1 : in.v0;  // lanes implying out=0
  const LaneMask i1 = inverting ? in.v0 : in.v1;
  const LaneMask act_forward = m & in_known & ~out_known;
  if (act_forward != 0) set_value(id, i0 & act_forward, i1 & act_forward);
  const LaneMask conflict =
      m & in_known & out_known & ((out.v0 & i1) | (out.v1 & i0));
  if (backward_implications_) {
    const LaneMask act_backward = m & out_known & ~in_known;
    if (act_backward != 0) {
      backward_.add(act_backward);
      const LaneMask s0 = inverting ? out.v1 : out.v0;
      const LaneMask s1 = inverting ? out.v0 : out.v1;
      set_value(source, s0 & act_backward, s1 & act_backward);
    }
  }
  return conflict;
}

}  // namespace rd
