#include "sim/implication_bitpar.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/implication_bitpar_kernels.h"

namespace rd {

namespace {

struct Dispatch {
  bitpar_detail::KernelTable table;
  const char* name = "portable";
};

// Resolved once per process: the widest kernel tier the CPU supports
// AND the toolchain compiled in, optionally capped by the
// RD_BITPAR_DISPATCH environment variable ("portable" / "avx2" /
// "avx512") so the differential CI script can exercise every tier on
// one machine.  Capping above what the hardware has never selects an
// unsupported tier — the cap only stops the upgrade ladder early.
const Dispatch& dispatch() {
  static const Dispatch resolved = [] {
    Dispatch d;
    bitpar_detail::fill_kernels_portable(d.table);
    const char* cap_env = std::getenv("RD_BITPAR_DISPATCH");
    const std::string cap = cap_env != nullptr ? cap_env : "";
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    if (cap == "portable") return d;
    __builtin_cpu_init();
    bitpar_detail::KernelTable tier;
    if (__builtin_cpu_supports("avx2") &&
        bitpar_detail::fill_kernels_avx2(tier)) {
      d.table = tier;
      d.name = "avx2";
    }
    if (cap == "avx2") return d;
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl") &&
        bitpar_detail::fill_kernels_avx512(tier)) {
      d.table = tier;
      d.name = "avx512";
    }
#endif
    return d;
  }();
  return resolved;
}

}  // namespace

const char* bitpar_dispatch_name() { return dispatch().name; }

LaneImplicationEngine::LaneImplicationEngine(const CompiledCircuit& compiled,
                                             bool backward_implications,
                                             const ImplicationEngine* base,
                                             unsigned lanes)
    : compiled_(&compiled),
      backward_implications_(backward_implications),
      base_(base),
      lanes_(lanes),
      words_(plane_words_for(lanes)),
      stride_(2 * plane_words_for(lanes)) {
  if (lanes < 1 || lanes > kMaxLanes)
    throw std::invalid_argument("LaneImplicationEngine: lanes must be 1.." +
                                std::to_string(kMaxLanes));
  planes_.assign(compiled.num_gates() * stride_, 0);
  grow_trail(std::max<std::size_t>(compiled.num_gates(), 64));
  grow_queue(std::max<std::size_t>(
      compiled.num_gates() + compiled.num_leads() + 1, 64));
  drain_fn_ =
      dispatch().table.drain[plane_words_index(words_)][base_ != nullptr];
}

void LaneImplicationEngine::grow_trail(std::size_t need) {
  const std::size_t cap = std::max(need, trail_cap_ * 2);
  trail_gates_.resize(cap);
  trail_masks_.resize(cap * stride_);
  trail_cap_ = cap;
}

void LaneImplicationEngine::grow_queue(std::size_t need) {
  const std::size_t cap = std::max(need, queue_cap_ * 2);
  queue_words_.resize(cap);
  queue_masks_.resize(cap * words_);
  queue_cap_ = cap;
}

void LaneImplicationEngine::begin_batch(const LaneSet& lanes) {
  // Unwind everything the previous batch set — the trail records every
  // plane write, so this restores all-unknown without touching the
  // (much larger) untouched remainder of planes_.
  rollback(0);
  batch_ = lanes & lane_mask_below(lanes_);
  queue_len_ = 0;
  queue_head_ = 0;
  assignments_.clear();
  propagations_.clear();
  conflicts_.clear();
  backward_.clear();
}

void LaneImplicationEngine::rollback(std::size_t mark) {
  const unsigned w = words_;
  while (trail_len_ > mark) {
    --trail_len_;
    const GateId gate = trail_gates_[trail_len_];
    const std::uint64_t* tm = trail_masks_.data() + trail_len_ * stride_;
    std::uint64_t* p = planes_.data() + gate * stride_;
    for (unsigned j = 0; j < w; ++j) {
      p[j] &= ~tm[j];
      p[w + j] &= ~tm[w + j];
    }
  }
}

std::size_t LaneImplicationEngine::memory_bytes() const {
  return planes_.capacity() * sizeof(std::uint64_t) +
         trail_gates_.capacity() * sizeof(GateId) +
         trail_masks_.capacity() * sizeof(std::uint64_t) +
         queue_words_.capacity() * sizeof(GateWord) +
         queue_masks_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
}

void LaneImplicationEngine::set_value_rt(GateId id, const std::uint64_t* m0,
                                         const std::uint64_t* m1) {
  const unsigned w = words_;
  std::uint64_t* p = planes_.data() + id * stride_;
  LaneSet m;
  for (unsigned j = 0; j < w; ++j) {
    p[j] |= m0[j];
    p[w + j] |= m1[j];
    m.w[j] = m0[j] | m1[j];
  }
  ensure_trail(trail_len_ + 1);
  trail_gates_[trail_len_] = id;
  std::uint64_t* tm = trail_masks_.data() + trail_len_ * stride_;
  std::memcpy(tm, m0, w * sizeof(std::uint64_t));
  std::memcpy(tm + w, m1, w * sizeof(std::uint64_t));
  ++trail_len_;
  assignments_.add(m);
  const std::uint32_t n = compiled_->fanout_count(id);
  ensure_queue(queue_len_ + 1 + n);
  GateWord* qw = queue_words_.data() + queue_len_;
  std::uint64_t* qm = queue_masks_.data() + queue_len_ * w;
  qw[0] = compiled_->gate_words()[id];
  std::memcpy(qm, m.w, w * sizeof(std::uint64_t));
  const GateWord* sink = compiled_->fanout_sink_begin(id);
  for (std::uint32_t s = 0; s < n; ++s) {
    qw[1 + s] = sink[s];
    std::memcpy(qm + (1 + s) * w, m.w, w * sizeof(std::uint64_t));
  }
  queue_len_ += 1 + n;
}

LaneSet LaneImplicationEngine::assign(GateId id, Value3 value,
                                      const LaneSet& lanes) {
  if (!is_known(value)) return lanes;
  return assign_planes(id, value == Value3::kZero ? lanes : LaneSet{},
                       value == Value3::kOne ? lanes : LaneSet{});
}

LaneSet LaneImplicationEngine::assign_planes(GateId id, const LaneSet& zeros,
                                             const LaneSet& ones) {
  const LaneSet lanes = zeros | ones;
  const unsigned w = words_;
  const std::uint64_t* p = planes_.data() + id * stride_;
  std::uint64_t base0 = 0;
  std::uint64_t base1 = 0;
  if (base_ != nullptr) {
    const Value3 bv = base_->value(id);
    if (bv == Value3::kZero) base0 = ~0ull;
    if (bv == Value3::kOne) base1 = ~0ull;
  }
  // Already-known lanes resolve without propagation: equal values
  // succeed charge-free, different values are immediate conflicts —
  // the scalar assign()'s early-known fast path, lane-masked per
  // value group.
  LaneSet failed;
  LaneSet run0;
  LaneSet run1;
  std::uint64_t any_run = 0;
  for (unsigned j = 0; j < w; ++j) {
    const std::uint64_t v0 = p[j] | base0;
    const std::uint64_t v1 = p[w + j] | base1;
    const std::uint64_t known = v0 | v1;
    failed.w[j] = (zeros.w[j] & known & ~v0) | (ones.w[j] & known & ~v1);
    run0.w[j] = zeros.w[j] & ~known;
    run1.w[j] = ones.w[j] & ~known;
    any_run |= run0.w[j] | run1.w[j];
  }
  if (any_run != 0) {
    queue_len_ = 0;
    queue_head_ = 0;
    set_value_rt(id, run0.w, run1.w);
    const LaneSet run = run0 | run1;
    LaneSet drained;
    drain_fn_(*this, run.w, drained.w);
    failed |= drained;
  }
  if (failed.any()) conflicts_.add(failed);
  return lanes & ~failed;
}

}  // namespace rd
