// Three-valued logic values (0, 1, unknown) and gate evaluation over
// them.  Used by the implication engine and the ternary simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/gate_types.h"

namespace rd {

enum class Value3 : std::uint8_t { kZero = 0, kOne = 1, kUnknown = 2 };

constexpr Value3 to_value3(bool bit) {
  return bit ? Value3::kOne : Value3::kZero;
}

constexpr bool is_known(Value3 value) { return value != Value3::kUnknown; }

/// Precondition: is_known(value).
constexpr bool to_bool(Value3 value) { return value == Value3::kOne; }

constexpr Value3 negate(Value3 value) {
  switch (value) {
    case Value3::kZero: return Value3::kOne;
    case Value3::kOne: return Value3::kZero;
    case Value3::kUnknown: return Value3::kUnknown;
  }
  return Value3::kUnknown;
}

constexpr char value3_char(Value3 value) {
  switch (value) {
    case Value3::kZero: return '0';
    case Value3::kOne: return '1';
    case Value3::kUnknown: return 'X';
  }
  return '?';
}

/// Evaluates a gate over three-valued inputs.  For gates with a
/// controlling value: any controlling input decides the output; all
/// non-controlling inputs decide it the other way; otherwise unknown.
/// NOT/BUF/OUTPUT propagate their single input.  Not valid for kInput.
inline Value3 eval_gate3(GateType type, const Value3* inputs,
                         std::size_t count) {
  switch (type) {
    case GateType::kInput:
      return Value3::kUnknown;
    case GateType::kOutput:
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return negate(inputs[0]);
    default: {
      const Value3 ctrl = to_value3(controlling_value(type));
      bool all_known = true;
      for (std::size_t i = 0; i < count; ++i) {
        if (inputs[i] == ctrl) return to_value3(controlled_output(type));
        if (!is_known(inputs[i])) all_known = false;
      }
      if (all_known) return to_value3(noncontrolled_output(type));
      return Value3::kUnknown;
    }
  }
}

}  // namespace rd
