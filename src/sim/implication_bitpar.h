// Multi-plane bit-parallel ternary implication engine (up to 512
// lanes wide).
//
// The scalar ImplicationEngine (sim/implication.h) evaluates one
// constraint program — one branch of the classifier's path-prefix
// tree, or one path's side-input assertions — at a time.  Almost all
// of that time is spent in the propagation drain loop, and almost all
// of the drained work is identical across sibling branches: they share
// the tree prefix, assert overlapping side-input tables, and walk the
// same CSR spans.  This engine runs up to kMaxLanes such programs in
// lockstep by encoding each gate's ternary value as two *bitplanes* of
// W 64-bit words each (W ∈ {1, 2, 4, 8}, chosen per engine from the
// requested lane count):
//
//   v0 bit l set  ->  lane l holds 0        (the voiraig/tbool idiom:
//   v1 bit l set  ->  lane l holds 1         two bits per ternary
//   neither set   ->  lane l holds X         value, vectorized W*64
//                                            lanes wide)
//
// so one AND/OR over the contiguous plane words applies a logic rule
// to all lanes at once.  The inner examine/drain/counter loops are
// compiled per plane width with the word count a template constant, in
// three translation units — a portable baseline plus AVX2 and AVX-512
// specializations — and the engine picks a kernel table at
// construction via runtime CPU dispatch (bitpar_dispatch_name() names
// the active tier; the RD_BITPAR_DISPATCH environment variable caps it
// for differential testing).  Lanes are *independent*: nothing ever
// flows between bit positions, so lane l's view of the engine is
// exactly a scalar engine running lane l's program.
//
// Bit-identity contract (the reason this engine can sit under the
// classifier at all): for every lane, the verdict (conflict or not)
// AND the four ImplicationStats counters equal what the scalar engine
// charges for the same program from the same starting state, event for
// event.  Two mechanisms make that exact rather than approximate:
//
//   * masked union-FIFO drain — the propagation queue holds
//     (GateWord, LaneSet) entries: every set_value pushes the gate
//     and its sinks tagged with the lanes that changed.  The
//     per-lane *filtered subsequence* of this union queue is, by
//     induction, exactly the lane's scalar queue: both start from the
//     same root push, and identical filtered pops produce identical
//     per-lane derivations and hence identical filtered pushes, in
//     order.  A lane that conflicts is removed from the active mask,
//     so — like the scalar engine, whose drain stops right after the
//     failing pop — it is never examined or charged again;
//   * per-lane event charging — counters are kept as bit-sliced
//     LaneCounters with one 64-bit word per plane word: charging a set
//     of lanes is one ripple-carry add of the lane mask into the
//     counter planes (the carry dies out after ~2 levels on average,
//     and each level is a W-word vector op), so a 512-lane drain pays
//     O(1) amortized per event instead of a 512-iteration loop.
//     Propagations are charged per pop by the popped entry's live
//     mask, assignments per set event, conflicts once per failed
//     assign per lane, and backward derivations per derivation site in
//     fanin pin order — the scalar engine's exact charging points.
//
// Optionally the engine *overlays* a scalar ImplicationEngine: every
// read ORs the base engine's value (broadcast to all lanes) under the
// lane-local planes.  This is how the classifier's DFS evaluates the
// sibling branches of one tree node — and how the lane-packed frontier
// scheduler evaluates whole groups of independent subtree roots, each
// lane carrying its own prefix assertions over the shared pair-root
// base (DESIGN.md §15).  The base engine must not change during a
// batch.
//
// See DESIGN.md §11 for the lane scheduling above this engine, §15 for
// the multi-plane layout and the kernel dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "netlist/compiled.h"
#include "sim/implication.h"
#include "sim/value.h"

namespace rd {

inline constexpr unsigned kLanesPerWord = 64;
inline constexpr unsigned kMaxPlaneWords = 8;
inline constexpr unsigned kMaxLanes = kLanesPerWord * kMaxPlaneWords;

/// Plane words backing `lanes` lanes: the smallest power-of-two word
/// count in {1, 2, 4, 8} that covers them (power of two so the kernel
/// template set stays at four instantiations per ISA tier).
constexpr unsigned plane_words_for(unsigned lanes) {
  const unsigned words =
      (lanes + kLanesPerWord - 1) / kLanesPerWord;  // ceil, >= 1
  unsigned w = 1;
  while (w < words) w *= 2;
  return w;
}

/// Index of a plane word count in the kernel tables: log2(W).
constexpr unsigned plane_words_index(unsigned words) {
  return words == 1 ? 0 : words == 2 ? 1 : words == 4 ? 2 : 3;
}

/// One bit per lane over the full kMaxLanes width; lane 0 is bit 0 of
/// word 0.  A LaneSet is a plain value (64 bytes): engines only read
/// the words their width covers, and the single-word constructor keeps
/// 64-lane call sites written against plain integer masks working
/// unchanged.
struct LaneSet {
  std::uint64_t w[kMaxPlaneWords];

  constexpr LaneSet() : w{} {}
  // NOLINTNEXTLINE(google-explicit-constructor): integer masks are the
  // natural spelling for single-word (<= 64 lane) call sites.
  constexpr LaneSet(std::uint64_t word0) : w{word0} {}

  constexpr bool none() const {
    std::uint64_t acc = 0;
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) acc |= w[j];
    return acc == 0;
  }
  constexpr bool any() const { return !none(); }
  constexpr bool test(unsigned lane) const {
    return (w[lane / kLanesPerWord] >> (lane % kLanesPerWord)) & 1u;
  }
  constexpr unsigned count() const {
    unsigned n = 0;
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) {
      std::uint64_t v = w[j];
      while (v != 0) {
        v &= v - 1;
        ++n;
      }
    }
    return n;
  }

  constexpr explicit operator bool() const { return any(); }
  constexpr bool operator==(const LaneSet&) const = default;

  constexpr LaneSet& operator&=(const LaneSet& o) {
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) w[j] &= o.w[j];
    return *this;
  }
  constexpr LaneSet& operator|=(const LaneSet& o) {
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) w[j] |= o.w[j];
    return *this;
  }
  constexpr LaneSet& operator^=(const LaneSet& o) {
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) w[j] ^= o.w[j];
    return *this;
  }

  friend constexpr LaneSet operator&(LaneSet a, const LaneSet& b) {
    return a &= b;
  }
  friend constexpr LaneSet operator|(LaneSet a, const LaneSet& b) {
    return a |= b;
  }
  friend constexpr LaneSet operator^(LaneSet a, const LaneSet& b) {
    return a ^= b;
  }
  friend constexpr LaneSet operator~(LaneSet a) {
    for (unsigned j = 0; j < kMaxPlaneWords; ++j) a.w[j] = ~a.w[j];
    return a;
  }

  friend std::ostream& operator<<(std::ostream& os, const LaneSet& s) {
    os << "LaneSet{";
    for (unsigned j = 0; j < kMaxPlaneWords; ++j)
      os << (j ? "," : "") << std::hex << s.w[j] << std::dec;
    return os << "}";
  }
};

/// Legacy alias: masks used to be bare uint64_t when the engine was
/// hard-wired to one plane word.
using LaneMask = LaneSet;

constexpr LaneSet lane_bit(unsigned lane) {
  LaneSet s;
  s.w[lane / kLanesPerWord] = 1ull << (lane % kLanesPerWord);
  return s;
}

/// Mask with the low `n` lanes set (n == kMaxLanes -> all lanes).
constexpr LaneSet lane_mask_below(unsigned n) {
  LaneSet s;
  for (unsigned j = 0; j < kMaxPlaneWords && n != 0; ++j) {
    s.w[j] = n >= kLanesPerWord ? ~0ull : (1ull << n) - 1;
    n = n >= kLanesPerWord ? n - kLanesPerWord : 0;
  }
  return s;
}

/// A kMaxLanes-lane event counter stored bit-sliced ("vertical"):
/// plane k holds bit k of every lane's count, one 64-bit word per
/// plane word.  add(mask) increments the counter of every lane in
/// `mask` with a ripple-carry over the planes — the carry mask loses
/// bits at every level, so the expected cost is ~2 W-word vector ops
/// per call regardless of how many lanes charge.  The plane-major
/// layout (planes[k][j]) keeps the W words of one carry level
/// contiguous, which is what the per-ISA kernels vectorize over.
struct LaneCounter {
  /// 32 bits of count per lane: one batch charges any single lane at
  /// most once per (gate, event) and circuits stay far below 2^32
  /// events per assign program.
  static constexpr int kBits = 32;
  std::uint64_t planes[kBits][kMaxPlaneWords] = {};

  void add(const LaneSet& mask) {
    LaneSet carry = mask;
    for (int k = 0; k < kBits; ++k) {
      std::uint64_t pending = 0;
      for (unsigned j = 0; j < kMaxPlaneWords; ++j) {
        const std::uint64_t bits = planes[k][j];
        planes[k][j] = bits ^ carry.w[j];
        carry.w[j] &= bits;
        pending |= carry.w[j];
      }
      if (pending == 0) break;
    }
  }

  /// Horizontal read-out of one lane's count (cold: merges/asserts).
  std::uint64_t lane(unsigned l) const {
    const unsigned word = l / kLanesPerWord;
    const unsigned bit = l % kLanesPerWord;
    std::uint64_t v = 0;
    for (int k = 0; k < kBits; ++k)
      v |= ((planes[k][word] >> bit) & 1ull) << k;
    return v;
  }

  void clear() {
    for (auto& plane : planes)
      for (auto& word : plane) word = 0;
  }
};

class LaneImplicationEngine;

namespace bitpar_detail {

/// One drain kernel: pops the engine's union FIFO for the `run` lanes
/// (words_ plane words) and writes the conflicted lanes to `failed`.
/// Compiled per (plane word count, base overlay, ISA tier); the engine
/// binds one at construction.
using DrainFn = void (*)(LaneImplicationEngine&, const std::uint64_t* run,
                         std::uint64_t* failed);

}  // namespace bitpar_detail

/// Name of the kernel tier the runtime CPU dispatch selected for this
/// process: "avx512", "avx2" or "portable".  The RD_BITPAR_DISPATCH
/// environment variable ("portable" / "avx2" / "avx512") caps the
/// selection — the differential CI script uses it to run the same
/// binary under every tier the machine supports.
const char* bitpar_dispatch_name();

class LaneImplicationEngine {
 public:
  /// Runs over a caller-owned CompiledCircuit (must outlive this
  /// engine).  `base`, when non-null, is a scalar engine whose current
  /// values are read under the lane overlay (broadcast to every lane);
  /// it must outlive this engine and must not change during a batch.
  /// `backward_implications` mirrors the scalar engine's ablation
  /// switch and must match the base engine's setting.  `lanes` (1 ..
  /// kMaxLanes) sizes the plane arrays: the engine rounds it up to a
  /// whole number of 64-lane plane words and never reads or writes
  /// beyond them.  Throws std::invalid_argument outside [1, kMaxLanes].
  explicit LaneImplicationEngine(const CompiledCircuit& compiled,
                                 bool backward_implications = true,
                                 const ImplicationEngine* base = nullptr,
                                 unsigned lanes = kLanesPerWord);

  /// Starts a fresh batch over the lanes in `lanes`: unwinds every
  /// lane-local value via the trail (O(sets since the last batch)) and
  /// zeroes the per-batch lane counters.  Invalidates outstanding
  /// marks.  Lanes at or above lanes() are ignored.
  void begin_batch(const LaneSet& lanes);

  /// Asserts gate `id` := `value` on every lane in `lanes` and drains
  /// local implications in lockstep.  Returns the lanes of `lanes`
  /// that did NOT conflict.  Per lane this is exactly the scalar
  /// engine's assign(): already-known-equal lanes succeed with no
  /// charges, already-known-different lanes fail charging one
  /// conflict, unknown lanes propagate.  Lanes outside the batch must
  /// not be passed.  An unknown `value` is a charge-free no-op.
  LaneSet assign(GateId id, Value3 value, const LaneSet& lanes);

  /// Lane-valued assign: asserts gate `id` := 0 on the `zeros` lanes
  /// and := 1 on the `ones` lanes (disjoint masks) in ONE lockstep
  /// drain.  Per lane this is indistinguishable from assign() with
  /// that lane's value — the root set event just carries both value
  /// planes, so the per-lane filtered drain (and therefore the stats
  /// charge) is unchanged — but the union drain amortizes each pop
  /// over both value groups instead of splitting the batch in half.
  /// This is the pattern-parallel workhorse: one call applies a full
  /// lane-wide ternary vector component.  Returns the lanes of
  /// `zeros | ones` that did NOT conflict.
  LaneSet assign_planes(GateId id, const LaneSet& zeros,
                        const LaneSet& ones);

  /// Trail watermark / undo, scalar-engine style.  Rollback clears
  /// values only; the per-batch counters measure work done, not state
  /// held, exactly like the scalar engine's.
  std::size_t mark() const { return trail_len_; }
  void rollback(std::size_t mark);

  /// One lane's effective value (kUnknown if unassigned): the
  /// lane-local plane bit over the broadcast base-engine value.
  Value3 value(GateId id, unsigned lane) const {
    const std::uint64_t* p = planes_.data() + id * stride_;
    const unsigned word = lane / kLanesPerWord;
    const std::uint64_t bit = 1ull << (lane % kLanesPerWord);
    if (p[word] & bit) return Value3::kZero;
    if (p[words_ + word] & bit) return Value3::kOne;
    if (base_ != nullptr) return base_->value(id);
    return Value3::kUnknown;
  }

  /// Lanes selected by the current batch.
  const LaneSet& batch() const { return batch_; }

  /// Lane count requested at construction (plane_words() * 64 >= it).
  unsigned lanes() const { return lanes_; }
  /// 64-bit words per bitplane (1, 2, 4 or 8).
  unsigned plane_words() const { return words_; }

  /// One lane's event counters accumulated since begin_batch() —
  /// bit-identical to a scalar engine's stats delta for running the
  /// lane's program from the same starting state.  Lanes never
  /// assigned to (or outside the batch) read all-zero.
  ImplicationStats lane_stats(unsigned lane) const {
    return ImplicationStats{assignments_.lane(lane),
                            propagations_.lane(lane),
                            conflicts_.lane(lane), backward_.lane(lane)};
  }

  const CompiledCircuit& compiled() const { return *compiled_; }

  /// Current footprint of the engine's own buffers (diagnostics).
  std::size_t memory_bytes() const;

  // ------------------------------------------------------------------
  // Internal kernel state.  Public so the per-ISA kernel translation
  // units (implication_bitpar_{portable,avx2,avx512}.cpp) can run the
  // drain loop over raw storage without shared inline code — an inline
  // helper compiled under -mavx512f in one TU could be the copy the
  // linker keeps for every TU.  Nothing outside sim/ may touch these.
  // ------------------------------------------------------------------

  const CompiledCircuit* compiled_;
  bool backward_implications_;
  const ImplicationEngine* base_;
  unsigned lanes_;
  unsigned words_;   // plane words (1/2/4/8)
  unsigned stride_;  // u64 words per gate: 2 * words_ (v0 then v1)

  // Always-valid planes: every set event is trailed, and begin_batch
  // unwinds the trail back to all-unknown.  (An epoch stamp per gate
  // would make begin_batch O(1), but it puts a compare+select on the
  // innermost examine read — the drain does orders of magnitude more
  // reads than batches do resets, so the trail unwind wins.)  Flat
  // layout: gate g's plane words are planes_[g*stride_ .. +stride_),
  // v0 words first, then v1 words — one contiguous block per gate is
  // what the kernels' fixed-W word loops vectorize over.
  std::vector<std::uint64_t> planes_;

  // Set-event trail as parallel flat arrays: entry t is
  // trail_gates_[t] plus stride_ mask words (m0 words then m1 words)
  // at trail_masks_[t*stride_].  trail_len_ is the logical length;
  // the vectors hold capacity (grown only by grow_trail, out of line
  // in the portable TU, so kernels never instantiate vector growth).
  std::vector<GateId> trail_gates_;
  std::vector<std::uint64_t> trail_masks_;
  std::size_t trail_len_ = 0;
  std::size_t trail_cap_ = 0;

  // Union FIFO: entry q is queue_words_[q] plus words_ mask words at
  // queue_masks_[q*words_]; cleared per assign, head chases length.
  std::vector<GateWord> queue_words_;
  std::vector<std::uint64_t> queue_masks_;
  std::size_t queue_len_ = 0;
  std::size_t queue_head_ = 0;
  std::size_t queue_cap_ = 0;

  LaneSet batch_;

  // Per-batch, per-lane event counters (bit-sliced).
  LaneCounter assignments_;
  LaneCounter propagations_;
  LaneCounter conflicts_;
  LaneCounter backward_;

  /// Amortized-doubling growth, out of line in the portable TU.  The
  /// kernels call these through the two inline guards below, whose
  /// fast path is a plain size_t compare (no vector code).
  void grow_trail(std::size_t need);
  void grow_queue(std::size_t need);

  void ensure_trail(std::size_t need) {
    if (need > trail_cap_) grow_trail(need);
  }
  void ensure_queue(std::size_t need) {
    if (need > queue_cap_) grow_queue(need);
  }

 private:
  /// Records one set event with runtime plane width (the cold shell's
  /// root push; kernels carry their own fixed-width copy).
  void set_value_rt(GateId id, const std::uint64_t* m0,
                    const std::uint64_t* m1);

  bitpar_detail::DrainFn drain_fn_ = nullptr;
};

}  // namespace rd
