// 64-wide bit-parallel ternary implication engine.
//
// The scalar ImplicationEngine (sim/implication.h) evaluates one
// constraint program — one branch of the classifier's path-prefix
// tree, or one path's side-input assertions — at a time.  Almost all
// of that time is spent in the propagation drain loop, and almost all
// of the drained work is identical across sibling branches: they share
// the tree prefix, assert overlapping side-input tables, and walk the
// same CSR spans.  This engine runs up to 64 such programs in lockstep
// by encoding each gate's ternary value as two 64-bit *bitplanes*:
//
//   v0 bit l set  ->  lane l holds 0        (the voiraig/tbool idiom:
//   v1 bit l set  ->  lane l holds 1         two bits per ternary
//   neither set   ->  lane l holds X         value, vectorized 64-wide)
//
// so one AND/OR over plane words applies a logic rule to 64 lanes at
// once.  Lanes are *independent*: nothing ever flows between bit
// positions, so lane l's view of the engine is exactly a scalar
// engine running lane l's program.
//
// Bit-identity contract (the reason this engine can sit under the
// classifier at all): for every lane, the verdict (conflict or not)
// AND the four ImplicationStats counters equal what the scalar engine
// charges for the same program from the same starting state, event for
// event.  Two mechanisms make that exact rather than approximate:
//
//   * masked union-FIFO drain — the propagation queue holds
//     (GateWord, LaneMask) entries: every set_value pushes the gate
//     and its sinks tagged with the lanes that changed.  The
//     per-lane *filtered subsequence* of this union queue is, by
//     induction, exactly the lane's scalar queue: both start from the
//     same root push, and identical filtered pops produce identical
//     per-lane derivations and hence identical filtered pushes, in
//     order.  A lane that conflicts is removed from the active mask,
//     so — like the scalar engine, whose drain stops right after the
//     failing pop — it is never examined or charged again;
//   * per-lane event charging — counters are kept as bit-sliced
//     LaneCounters: charging a set of lanes is one ripple-carry add of
//     the lane mask into the counter planes, so a 64-lane drain pays
//     O(1) amortized per event instead of a 64-iteration loop.
//     Propagations are charged per pop by the popped entry's live
//     mask, assignments per set event, conflicts once per failed
//     assign per lane, and backward derivations per derivation site in
//     fanin pin order — the scalar engine's exact charging points.
//
// Optionally the engine *overlays* a scalar ImplicationEngine: every
// read ORs the base engine's value (broadcast to all lanes) under the
// lane-local planes.  This is how the classifier's DFS evaluates the
// sibling branches of one tree node: the scalar engine holds the node
// state, the lanes hold only each branch's divergent assertions, and
// begin_batch() discards them by unwinding the set-event trail (cost
// proportional to what the batch set, not to circuit size) when the
// DFS moves on.  The base engine must not change during a batch.
//
// See DESIGN.md §11 for the lane scheduling above this engine and the
// determinism argument for the lane-ordered merge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/compiled.h"
#include "sim/implication.h"
#include "sim/value.h"

namespace rd {

/// One bit per lane; lane 0 is bit 0.
using LaneMask = std::uint64_t;

inline constexpr unsigned kMaxLanes = 64;

constexpr LaneMask lane_bit(unsigned lane) { return 1ull << lane; }

/// Mask with the low `n` lanes set (n == 64 -> all lanes).
constexpr LaneMask lane_mask_below(unsigned n) {
  return n >= kMaxLanes ? ~0ull : (1ull << n) - 1;
}

/// A 64-lane event counter stored bit-sliced ("vertical"): plane k
/// holds bit k of every lane's count.  add(mask) increments the
/// counter of every lane in `mask` with a ripple-carry over the
/// planes — the carry mask loses bits at every level, so the expected
/// cost is ~2 word ops per call regardless of how many lanes charge.
struct LaneCounter {
  /// 32 bits of count per lane: one batch charges any single lane at
  /// most once per (gate, event) and circuits stay far below 2^32
  /// events per assign program.
  static constexpr int kBits = 32;
  std::uint64_t planes[kBits] = {};

  void add(LaneMask mask) {
    for (int k = 0; mask != 0 && k < kBits; ++k) {
      const std::uint64_t bits = planes[k];
      planes[k] = bits ^ mask;
      mask &= bits;  // carry into the next plane
    }
  }

  /// Horizontal read-out of one lane's count (cold: merges/asserts).
  std::uint64_t lane(unsigned l) const {
    std::uint64_t v = 0;
    for (int k = 0; k < kBits; ++k) v |= ((planes[k] >> l) & 1ull) << k;
    return v;
  }

  void clear() {
    for (auto& p : planes) p = 0;
  }
};

/// The two value bitplanes of one gate.  Invariant: v0 & v1 == 0 (a
/// lane is 0, 1 or unknown — never both).
struct LanePlanes {
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;

  LaneMask known() const { return v0 | v1; }
};

class LaneImplicationEngine {
 public:
  /// Runs over a caller-owned CompiledCircuit (must outlive this
  /// engine).  `base`, when non-null, is a scalar engine whose current
  /// values are read under the lane overlay (broadcast to every lane);
  /// it must outlive this engine and must not change during a batch.
  /// `backward_implications` mirrors the scalar engine's ablation
  /// switch and must match the base engine's setting.
  explicit LaneImplicationEngine(const CompiledCircuit& compiled,
                                 bool backward_implications = true,
                                 const ImplicationEngine* base = nullptr);

  /// Starts a fresh batch over the lanes in `lanes`: unwinds every
  /// lane-local value via the trail (O(sets since the last batch)) and
  /// zeroes the per-batch lane counters.  Invalidates outstanding
  /// marks.
  void begin_batch(LaneMask lanes);

  /// Asserts gate `id` := `value` on every lane in `lanes` and drains
  /// local implications in lockstep.  Returns the lanes of `lanes`
  /// that did NOT conflict.  Per lane this is exactly the scalar
  /// engine's assign(): already-known-equal lanes succeed with no
  /// charges, already-known-different lanes fail charging one
  /// conflict, unknown lanes propagate.  Lanes outside the batch must
  /// not be passed.  An unknown `value` is a charge-free no-op.
  LaneMask assign(GateId id, Value3 value, LaneMask lanes);

  /// Lane-valued assign: asserts gate `id` := 0 on the `zeros` lanes
  /// and := 1 on the `ones` lanes (disjoint masks) in ONE lockstep
  /// drain.  Per lane this is indistinguishable from assign() with
  /// that lane's value — the root set event just carries both value
  /// planes, so the per-lane filtered drain (and therefore the stats
  /// charge) is unchanged — but the union drain amortizes each pop
  /// over both value groups instead of splitting the batch in half.
  /// This is the pattern-parallel workhorse: one call applies a full
  /// 64-lane ternary vector component.  Returns the lanes of
  /// `zeros | ones` that did NOT conflict.
  LaneMask assign_planes(GateId id, LaneMask zeros, LaneMask ones);

  /// Trail watermark / undo, scalar-engine style.  Rollback clears
  /// values only; the per-batch counters measure work done, not state
  /// held, exactly like the scalar engine's.
  std::size_t mark() const { return trail_.size(); }
  void rollback(std::size_t mark);

  /// Effective value planes of a gate: lane-local assertions over the
  /// broadcast base-engine value (if any).  Lane-local planes are kept
  /// directly valid (begin_batch unwinds the trail instead of epoch
  /// stamping) so the common read is a single 16-byte load — this
  /// function sits in the innermost fanin sweep of examine().
  LanePlanes planes(GateId id) const {
    LanePlanes p = planes_[id];
    if (base_ != nullptr) {
      const Value3 bv = base_->value(id);
      if (bv == Value3::kZero)
        p.v0 |= ~0ull;
      else if (bv == Value3::kOne)
        p.v1 |= ~0ull;
    }
    return p;
  }

  /// One lane's effective value (kUnknown if unassigned).
  Value3 value(GateId id, unsigned lane) const {
    const LanePlanes p = planes(id);
    if (p.v0 & lane_bit(lane)) return Value3::kZero;
    if (p.v1 & lane_bit(lane)) return Value3::kOne;
    return Value3::kUnknown;
  }

  /// Lanes selected by the current batch.
  LaneMask batch() const { return batch_; }

  /// One lane's event counters accumulated since begin_batch() —
  /// bit-identical to a scalar engine's stats delta for running the
  /// lane's program from the same starting state.  Lanes never
  /// assigned to (or outside the batch) read all-zero.
  ImplicationStats lane_stats(unsigned lane) const {
    return ImplicationStats{assignments_.lane(lane),
                            propagations_.lane(lane),
                            conflicts_.lane(lane), backward_.lane(lane)};
  }

  const CompiledCircuit& compiled() const { return *compiled_; }

  /// Current footprint of the engine's own buffers (diagnostics).
  std::size_t memory_bytes() const;

 private:
  struct TrailEntry {
    std::uint64_t m0 = 0;  // lanes this event set to 0
    std::uint64_t m1 = 0;  // lanes this event set to 1
    GateId gate = kNullGate;
  };
  struct QueueEntry {
    GateWord word = 0;
    LaneMask mask = 0;  // lanes whose value changed at the push site
  };

  /// Records one set event: `m0`/`m1` lanes (disjoint, all currently
  /// unknown for `id`) take value 0/1, and the gate plus its sinks are
  /// queued for re-examination under the union mask.
  void set_value(GateId id, LaneMask m0, LaneMask m1);

  /// Union-FIFO drain over `run`, specialized on whether a base
  /// overlay exists: with kHasBase false every plane read in the
  /// examine hot loop folds to one 16-byte load.  Returns the lanes of
  /// `run` that conflicted.
  template <bool kHasBase>
  LaneMask drain(LaneMask run);

  /// Vector examine of one popped entry for the live lanes `m`:
  /// applies the scalar engine's forward/verify/backward rules to all
  /// lanes at once.  Returns the lanes of `m` that derived a conflict.
  template <bool kHasBase>
  LaneMask examine(GateWord word, LaneMask m);

  const CompiledCircuit* compiled_;
  bool backward_implications_;
  const ImplicationEngine* base_;

  // Always-valid planes: every set event is trailed, and begin_batch
  // unwinds the trail back to all-unknown.  (An epoch stamp per gate
  // would make begin_batch O(1), but it puts a compare+select on the
  // innermost examine read — the drain does orders of magnitude more
  // reads than batches do resets, so the trail unwind wins.)
  std::vector<LanePlanes> planes_;

  std::vector<TrailEntry> trail_;
  std::vector<QueueEntry> queue_;  // cleared per assign; head_ chases it
  std::size_t queue_head_ = 0;
  LaneMask batch_ = 0;

  // Per-batch, per-lane event counters (bit-sliced).
  LaneCounter assignments_;
  LaneCounter propagations_;
  LaneCounter conflicts_;
  LaneCounter backward_;
};

}  // namespace rd
