// Portable (baseline-ISA) instantiation of the lane-engine kernels.
// Always compiled with the project's default flags, so this table is
// valid on every CPU the binary runs on; the AVX2/AVX-512 TUs override
// it when the runtime dispatch finds the hardware.
#include "sim/implication_bitpar_kernels.h"

namespace rd {
namespace {
#include "sim/implication_bitpar_kernels.inc"
}  // namespace

namespace bitpar_detail {

void fill_kernels_portable(KernelTable& table) { fill_kernel_table(table); }

}  // namespace bitpar_detail
}  // namespace rd
