// Internal: kernel dispatch table for the multi-plane lane engine.
//
// The drain/examine hot loops of LaneImplicationEngine are compiled
// once per (plane word count, base overlay) in each of three
// translation units:
//
//   implication_bitpar_portable.cpp   baseline flags (always valid)
//   implication_bitpar_avx2.cpp       -mavx2 when the toolchain has it
//   implication_bitpar_avx512.cpp     -mavx512{f,bw,dq,vl}
//
// Every TU includes the same implication_bitpar_kernels.inc body
// inside an *anonymous* namespace, so each tier's instantiations are
// TU-local symbols — the linker can never substitute an AVX-512
// compiled copy for the portable one (the classic multiversioned-TU
// ODR hazard with inline templates).  The only exported symbols are
// the three fill functions below, which copy plain function pointers
// into a KernelTable; implication_bitpar.cpp resolves the table once
// per process with __builtin_cpu_supports (see bitpar_dispatch_name).
#pragma once

#include "sim/implication_bitpar.h"

namespace rd::bitpar_detail {

struct KernelTable {
  /// drain[plane_words_index(W)][has_base ? 1 : 0]
  DrainFn drain[4][2] = {};
};

/// Always fills (baseline codegen).
void fill_kernels_portable(KernelTable& table);
/// Fill and return true when the TU was compiled with the tier's ISA
/// flags; return false (table untouched) otherwise.  CPU support is
/// the dispatcher's job, not theirs.
bool fill_kernels_avx2(KernelTable& table);
bool fill_kernels_avx512(KernelTable& table);

}  // namespace rd::bitpar_detail
