#include "sim/logic_sim.h"

#include <stdexcept>

namespace rd {

std::vector<bool> simulate(const Circuit& circuit,
                           const std::vector<bool>& input_values) {
  if (input_values.size() != circuit.inputs().size())
    throw std::invalid_argument("simulate: input arity mismatch");
  std::vector<bool> values(circuit.num_gates(), false);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
    values[circuit.inputs()[i]] = input_values[i];
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) continue;
    switch (gate.type) {
      case GateType::kOutput:
      case GateType::kBuf:
        values[id] = values[gate.fanins[0]];
        break;
      case GateType::kNot:
        values[id] = !values[gate.fanins[0]];
        break;
      default: {
        const bool ctrl = controlling_value(gate.type);
        bool controlled = false;
        for (GateId fanin : gate.fanins)
          if (values[fanin] == ctrl) {
            controlled = true;
            break;
          }
        values[id] = controlled ? controlled_output(gate.type)
                                : noncontrolled_output(gate.type);
        break;
      }
    }
  }
  return values;
}

std::vector<Value3> simulate3(const Circuit& circuit,
                              const std::vector<Value3>& input_values) {
  if (input_values.size() != circuit.inputs().size())
    throw std::invalid_argument("simulate3: input arity mismatch");
  std::vector<Value3> values(circuit.num_gates(), Value3::kUnknown);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
    values[circuit.inputs()[i]] = input_values[i];
  std::vector<Value3> scratch;
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) continue;
    scratch.clear();
    for (GateId fanin : gate.fanins) scratch.push_back(values[fanin]);
    values[id] = eval_gate3(gate.type, scratch.data(), scratch.size());
  }
  return values;
}

std::vector<std::uint64_t> simulate64(
    const Circuit& circuit, const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != circuit.inputs().size())
    throw std::invalid_argument("simulate64: input arity mismatch");
  std::vector<std::uint64_t> words(circuit.num_gates(), 0);
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
    words[circuit.inputs()[i]] = input_words[i];
  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    switch (gate.type) {
      case GateType::kInput:
        break;
      case GateType::kOutput:
      case GateType::kBuf:
        words[id] = words[gate.fanins[0]];
        break;
      case GateType::kNot:
        words[id] = ~words[gate.fanins[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        std::uint64_t acc = ~std::uint64_t{0};
        for (GateId fanin : gate.fanins) acc &= words[fanin];
        words[id] = gate.type == GateType::kNand ? ~acc : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint64_t acc = 0;
        for (GateId fanin : gate.fanins) acc |= words[fanin];
        words[id] = gate.type == GateType::kNor ? ~acc : acc;
        break;
      }
    }
  }
  return words;
}

std::vector<bool> evaluate_minterm(const Circuit& circuit,
                                   std::uint64_t minterm) {
  if (circuit.inputs().size() > 64)
    throw std::invalid_argument("evaluate_minterm: too many inputs");
  std::vector<bool> input_values(circuit.inputs().size());
  for (std::size_t i = 0; i < input_values.size(); ++i)
    input_values[i] = (minterm >> i) & 1;
  const auto values = simulate(circuit, input_values);
  std::vector<bool> output_values;
  output_values.reserve(circuit.outputs().size());
  for (GateId po : circuit.outputs()) output_values.push_back(values[po]);
  return output_values;
}

}  // namespace rd
