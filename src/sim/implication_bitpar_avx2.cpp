// AVX2 instantiation of the lane-engine kernels.  CMake compiles this
// TU with -mavx2 when the toolchain supports it; __AVX2__ gates the
// body so an unsupported toolchain still links (the fill function
// reports the tier absent and the dispatcher keeps the portable
// table).  The kernel templates live in an anonymous namespace so the
// AVX2-lowered copies can never be picked by the linker for another
// TU's calls — only the function pointers exported here reach them,
// and only after __builtin_cpu_supports("avx2") passes.
#include "sim/implication_bitpar_kernels.h"

#if defined(__AVX2__)

namespace rd {
namespace {
#include "sim/implication_bitpar_kernels.inc"
}  // namespace

namespace bitpar_detail {

bool fill_kernels_avx2(KernelTable& table) {
  fill_kernel_table(table);
  return true;
}

}  // namespace bitpar_detail
}  // namespace rd

#else  // !defined(__AVX2__)

namespace rd::bitpar_detail {

bool fill_kernels_avx2(KernelTable&) { return false; }

}  // namespace rd::bitpar_detail

#endif
