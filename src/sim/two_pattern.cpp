#include "sim/two_pattern.h"

#include "sim/logic_sim.h"

namespace rd {

TwoPatternResult apply_two_pattern(const Circuit& circuit,
                                   const DelayModel& delays,
                                   const std::vector<bool>& v1,
                                   const std::vector<bool>& v2, double tau) {
  // v1 is held long enough to settle completely: the steady state is
  // the functional evaluation.
  const auto settled_v1 = simulate(circuit, v1);
  const TimedResult timed =
      simulate_timed(circuit, delays, settled_v1, v2,
                     /*record_po_history=*/true);

  TwoPatternResult result;
  if (!timed.completed) {
    result.completed = false;
    result.late = true;
  }
  result.sampled.resize(circuit.outputs().size());
  result.settled.resize(circuit.outputs().size());
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    const GateId po = circuit.outputs()[i];
    result.settled[i] = timed.final_values[po];
    // Value at τ: the last event at or before τ, else the v1 value.
    bool value = settled_v1[po];
    for (const auto& [time, new_value] : timed.po_history[i]) {
      if (time > tau) break;
      value = new_value;
    }
    result.sampled[i] = value;
    if (timed.last_change[po] > tau) result.late = true;
  }
  return result;
}

DelayModel inject_path_delay(const Circuit& circuit, const DelayModel& delays,
                             const PhysicalPath& path, double extra) {
  (void)circuit;
  DelayModel faulty = delays;
  const double share = extra / static_cast<double>(path.leads.size());
  for (LeadId lead : path.leads) faulty.lead_delay[lead] += share;
  return faulty;
}

}  // namespace rd
