// Static implication closure over a compiled circuit (DESIGN.md §14).
//
// For every literal (gate output, stable value) the closure records the
// complete outcome of asserting that literal on an otherwise-empty
// ImplicationEngine: the exact trail the drain would build (forward
// controlling-value propagation plus backward non-controlling
// inference, transitively closed), the exact ImplicationStats delta the
// drain would charge, and the ok/conflict verdict.  The rows are
// computed once per CompiledCircuit by literally running the engine —
// so they are correct by construction, not by a re-implementation of
// the implication rules — and are then shared read-only by every
// worker.
//
// Fused into ImplicationEngine::assign, a row replaces the event-by-
// event drain with a bulk install of the recorded trail whenever the
// current engine state provably cannot interact with the drain.  The
// interaction test is the row's *footprint*: the set of gates whose
// value or fanin counters the drain reads or writes,
//
//   W  = gates assigned by the empty-state drain (the recorded trail),
//   P  = W ∪ sinks(W)              (every gate examined by the drain),
//   F  = P ∪ fanins(P)             (every gate whose state it reads).
//
// If no currently-assigned gate lies in F, the drain from the current
// state is event-identical to the empty-state drain — same trail, same
// stats, same verdict — so installing the recorded row is exact, and
// verdict/stats bit-identity with the scalar reference engine is
// preserved unconditionally (misses simply fall through to the drain).
//
// Footprints are stored bit-packed: dense rows (one bit per gate) for
// literals whose footprint is wide, CSR spans (sorted gate lists) for
// the tail — whichever is smaller, unless a build option forces one
// representation (the equivalence tests do).  Build cost and memory
// are guarded: bytes are accounted through ExecGuard::add_memory and
// an optional standalone ceiling, and exceeding either surfaces as a
// typed GuardTrippedError(AbortReason::kMemory) instead of an OOM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/compiled.h"
#include "sim/implication.h"
#include "util/exec_guard.h"

namespace rd {

/// Footprint storage policy.  kAuto picks per row by size; the forced
/// modes exist so tests can check dense/CSR row equivalence.
enum class ClosureRowMode : std::uint8_t { kAuto, kAllDense, kAllCsr };

struct ClosureBuildOptions {
  /// Standalone ceiling on the closure's own tables (0 = unlimited).
  /// Exceeding it throws GuardTrippedError(AbortReason::kMemory).
  std::uint64_t memory_limit_mb = 0;

  /// Optional run guard: closure bytes are charged via add_memory (and
  /// released by the destructor), and the build polls check() once per
  /// literal so deadlines / cancellation / memory ceilings / injected
  /// trips all abort the build with their typed reason.  Must outlive
  /// the closure.
  ExecGuard* guard = nullptr;

  ClosureRowMode row_mode = ClosureRowMode::kAuto;

  /// Must match the engines the closure will be attached to; a closure
  /// built with backward reasoning records different rows than the
  /// forward-only ablation engine derives.
  bool backward_implications = true;
};

/// Closure counters carried through classify results and run reports.
/// The build-side fields describe the one shared closure; hits/misses
/// and the learning counters are accumulated per engine / per worker
/// and merged by summation.
struct ClosureStats {
  std::uint64_t literals = 0;     // rows built (2 per gate)
  std::uint64_t dense_rows = 0;
  std::uint64_t csr_rows = 0;
  std::uint64_t bytes = 0;        // footprint + trail-pool + row bytes
  double build_seconds = 0.0;
  std::uint64_t hits = 0;         // assigns served by a row install
  std::uint64_t misses = 0;       // assigns that fell through to the drain
  std::uint64_t learned_assignments = 0;  // literals forced by probing
  std::uint64_t learned_dropped = 0;      // kept paths refuted by probing

  /// Workers share one closure, so the build-side fields agree (max
  /// keeps them from double-counting); the per-engine counters sum.
  void merge(const ClosureStats& other) {
    literals = literals > other.literals ? literals : other.literals;
    dense_rows = dense_rows > other.dense_rows ? dense_rows : other.dense_rows;
    csr_rows = csr_rows > other.csr_rows ? csr_rows : other.csr_rows;
    bytes = bytes > other.bytes ? bytes : other.bytes;
    build_seconds =
        build_seconds > other.build_seconds ? build_seconds
                                            : other.build_seconds;
    hits += other.hits;
    misses += other.misses;
    learned_assignments += other.learned_assignments;
    learned_dropped += other.learned_dropped;
  }

  bool operator==(const ClosureStats&) const = default;
};

class StaticClosure {
 public:
  /// One literal's precomputed drain outcome.
  struct Row {
    std::uint32_t trail_begin = 0;  // span into trail_pool()
    std::uint32_t trail_count = 0;  // assignments the drain records
    std::uint32_t foot_begin = 0;   // dense: word offset; CSR: gate offset
    std::uint32_t foot_count = 0;   // gates in the footprint
    ImplicationStats delta;         // stats the drain charges
    bool ok = true;                 // false: the literal is unsatisfiable
    bool dense = false;
  };

  /// Runs the implication engine once per literal and records the rows.
  /// Throws GuardTrippedError on a guard trip or a blown memory budget.
  explicit StaticClosure(const CompiledCircuit& compiled,
                         const ClosureBuildOptions& options = {});
  ~StaticClosure();

  StaticClosure(const StaticClosure&) = delete;
  StaticClosure& operator=(const StaticClosure&) = delete;

  const CompiledCircuit& compiled() const { return *compiled_; }
  bool backward_implications() const { return backward_implications_; }

  static std::size_t literal_index(GateId id, Value3 value) {
    return (static_cast<std::size_t>(id) << 1) |
           static_cast<std::size_t>(value == Value3::kOne);
  }

  /// Precondition: is_known(value).
  const Row& row(GateId id, Value3 value) const {
    return rows_[literal_index(id, value)];
  }

  /// True iff `gate` lies in the row's footprint F — i.e. an assignment
  /// on `gate` could interact with the recorded drain.
  bool footprint_contains(const Row& row, GateId gate) const {
    if (row.dense)
      return (dense_words_[row.foot_begin + (gate >> 6)] >> (gate & 63)) & 1u;
    // Sorted CSR span: binary search; foot_count is small by
    // construction (CSR is only chosen for narrow rows).
    const GateId* begin = csr_gates_.data() + row.foot_begin;
    const GateId* end = begin + row.foot_count;
    while (begin != end) {
      const GateId* mid = begin + (end - begin) / 2;
      if (*mid < gate)
        begin = mid + 1;
      else if (*mid > gate)
        end = mid;
      else
        return true;
    }
    return false;
  }

  /// The recorded trail of a row (entries in ImplicationEngine's trail
  /// packing: gate id low, assigned Value3 in bits 32..39).
  const std::uint64_t* trail_entries(const Row& row) const {
    return trail_pool_.data() + row.trail_begin;
  }

  static GateId entry_gate(std::uint64_t entry) {
    return static_cast<GateId>(entry);
  }
  static Value3 entry_value(std::uint64_t entry) {
    return static_cast<Value3>(static_cast<std::uint8_t>(entry >> 32));
  }

  const ClosureStats& build_stats() const { return stats_; }

 private:
  const CompiledCircuit* compiled_;
  ExecGuard* guard_;
  bool backward_implications_;
  std::uint64_t accounted_bytes_ = 0;
  std::size_t words_per_row_ = 0;

  std::vector<Row> rows_;                   // 2 * num_gates
  std::vector<std::uint64_t> trail_pool_;   // concatenated recorded trails
  std::vector<std::uint64_t> dense_words_;  // dense footprints
  std::vector<GateId> csr_gates_;           // sorted CSR footprints
  ClosureStats stats_;
};

}  // namespace rd
