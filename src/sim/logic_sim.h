// Combinational logic simulation: single-pattern two-valued, ternary,
// and 64-way bit-parallel.  The bit-parallel simulator is the oracle
// used by tests to cross-check the implication engine and the
// classifiers' exact reference implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "sim/value.h"

namespace rd {

/// Simulates one two-valued input vector (indexed like circuit.inputs())
/// and returns a per-gate value array indexed by GateId.
std::vector<bool> simulate(const Circuit& circuit,
                           const std::vector<bool>& input_values);

/// Ternary simulation; unknown inputs propagate pessimistically.
std::vector<Value3> simulate3(const Circuit& circuit,
                              const std::vector<Value3>& input_values);

/// 64-way parallel-pattern simulation.  Bit b of input word i is pattern
/// b's value for PI i; returns one 64-bit word per gate.
std::vector<std::uint64_t> simulate64(
    const Circuit& circuit, const std::vector<std::uint64_t>& input_words);

/// Evaluates the circuit on the input vector encoded in the low bits of
/// `minterm` (bit i = value of PI i) and returns per-PO values, indexed
/// like circuit.outputs().  Convenience for exhaustive sweeps in tests.
std::vector<bool> evaluate_minterm(const Circuit& circuit,
                                   std::uint64_t minterm);

}  // namespace rd
