// AVX-512 instantiation of the lane-engine kernels.  CMake compiles
// this TU with -mavx512f -mavx512bw -mavx512dq -mavx512vl when the
// toolchain supports them; the macro gate keeps unsupported toolchains
// linking (fill reports the tier absent).  With W == 8 plane words the
// whole 512-lane mask algebra lowers to single zmm ops.  See the AVX2
// TU for the anonymous-namespace isolation argument.
#include "sim/implication_bitpar_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__) && defined(__AVX512VL__)

namespace rd {
namespace {
#include "sim/implication_bitpar_kernels.inc"
}  // namespace

namespace bitpar_detail {

bool fill_kernels_avx512(KernelTable& table) {
  fill_kernel_table(table);
  return true;
}

}  // namespace bitpar_detail
}  // namespace rd

#else  // missing AVX-512 subsets

namespace rd::bitpar_detail {

bool fill_kernels_avx512(KernelTable&) { return false; }

}  // namespace rd::bitpar_detail

#endif
