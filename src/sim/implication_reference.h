// Frozen pre-compilation implication engine — the PR-3-era trail
// engine, kept verbatim as the differential oracle and the benchmark
// baseline for the compiled hot path (sim/implication.h).
//
// Do not optimize this class: its point is to preserve the exact event
// stream (assignments, propagations, conflicts, backward derivations)
// of the original engine so tests can assert that the compiled engine
// is bit-identical, and bench_micro can report an honest before/after
// throughput pair.  Semantics are documented in sim/implication.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "sim/implication.h"
#include "sim/value.h"

namespace rd {

class ReferenceImplicationEngine {
 public:
  explicit ReferenceImplicationEngine(const Circuit& circuit,
                                      bool backward_implications = true);

  bool assign(GateId id, Value3 value);
  std::size_t mark() const { return trail_.size(); }
  void undo_to(std::size_t mark);
  Value3 value(GateId id) const { return values_[id]; }
  std::size_t num_assigned() const { return trail_.size(); }
  const ImplicationStats& stats() const { return stats_; }

 private:
  void set_value(GateId id, Value3 value);
  bool examine(GateId id);
  bool propagate();

  const Circuit* circuit_;
  bool backward_implications_;
  std::vector<Value3> values_;
  std::vector<GateId> trail_;
  std::vector<GateId> queue_;
  std::size_t queue_head_ = 0;
  ImplicationStats stats_;
};

}  // namespace rd
