#include "sim/timed_sim.h"

#include <queue>
#include <stdexcept>

namespace rd {

DelayModel DelayModel::zero(const Circuit& circuit) {
  DelayModel model;
  model.gate_delay.assign(circuit.num_gates(), 0.0);
  model.lead_delay.assign(circuit.num_leads(), 0.0);
  return model;
}

namespace {

// Two event kinds keep transport semantics exact: a *gate* event commits
// a previously computed output value after the gate delay; a *lead*
// event delivers a driver value to a sink pin after the wire delay and
// triggers re-evaluation of the sink.
struct Event {
  double time;
  std::uint64_t sequence;  // FIFO tie-break for equal times
  bool is_lead;
  std::uint32_t target;  // GateId or LeadId
  bool value;
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

// Evaluates a gate two-valued from the values present at its input pins.
bool eval_gate(const Circuit& circuit, GateId id,
               const std::vector<bool>& pin_values) {
  const Gate& gate = circuit.gate(id);
  switch (gate.type) {
    case GateType::kOutput:
    case GateType::kBuf:
      return pin_values[gate.fanin_leads[0]];
    case GateType::kNot:
      return !pin_values[gate.fanin_leads[0]];
    default: {
      const bool ctrl = controlling_value(gate.type);
      for (LeadId lead : gate.fanin_leads)
        if (pin_values[lead] == ctrl) return controlled_output(gate.type);
      return noncontrolled_output(gate.type);
    }
  }
}

}  // namespace

TimedResult simulate_timed(const Circuit& circuit, const DelayModel& delays,
                           const std::vector<bool>& initial_values,
                           const std::vector<bool>& input_values,
                           bool record_po_history,
                           const TimedSimOptions& options) {
  if (initial_values.size() != circuit.num_gates())
    throw std::invalid_argument("simulate_timed: initial value arity mismatch");
  if (input_values.size() != circuit.inputs().size())
    throw std::invalid_argument("simulate_timed: input arity mismatch");
  if (delays.gate_delay.size() != circuit.num_gates() ||
      delays.lead_delay.size() != circuit.num_leads())
    throw std::invalid_argument("simulate_timed: delay model arity mismatch");

  TimedResult result;
  result.final_values = initial_values;
  result.last_change.assign(circuit.num_gates(), 0.0);
  std::vector<std::size_t> po_index(circuit.num_gates(),
                                    static_cast<std::size_t>(-1));
  if (record_po_history) {
    result.po_history.resize(circuit.outputs().size());
    for (std::size_t i = 0; i < circuit.outputs().size(); ++i)
      po_index[circuit.outputs()[i]] = i;
  }

  // Values as present at gate input pins (i.e. after the wire delay).
  std::vector<bool> pin_values(circuit.num_leads());
  for (LeadId lead = 0; lead < circuit.num_leads(); ++lead)
    pin_values[lead] = initial_values[circuit.lead(lead).driver];

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t sequence = 0;

  auto schedule_gate_update = [&](GateId id, double now) {
    // A pin changed at `now`; with transport semantics the output takes
    // the newly computed value after the gate delay.
    const bool value = eval_gate(circuit, id, pin_values);
    events.push(Event{now + delays.gate_delay[id], sequence++,
                      /*is_lead=*/false, id, value});
  };

  // t=0: PIs take the new vector; every gate whose stored output is
  // inconsistent with its (arbitrary) initial pin values re-evaluates.
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    const GateId pi = circuit.inputs()[i];
    if (result.final_values[pi] != input_values[i])
      events.push(
          Event{0.0, sequence++, /*is_lead=*/false, pi, input_values[i]});
  }
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) continue;
    const bool value = eval_gate(circuit, id, pin_values);
    if (value != result.final_values[id])
      events.push(Event{delays.gate_delay[id], sequence++, /*is_lead=*/false,
                        id, value});
  }

  // Guard polls are amortized; the event budget is exact.
  constexpr std::uint64_t kGuardStride = 1024;
  std::uint64_t processed = 0;
  while (!events.empty()) {
    ++processed;
    if (options.event_budget != 0 && processed > options.event_budget) {
      result.completed = false;
      result.abort_reason = AbortReason::kWorkBudget;
      break;
    }
    if (options.guard != nullptr && processed % kGuardStride == 0 &&
        !options.guard->check(kGuardStride)) {
      result.completed = false;
      result.abort_reason = options.guard->reason();
      break;
    }
    const Event event = events.top();
    events.pop();
    if (event.is_lead) {
      const LeadId lead_id = event.target;
      if (pin_values[lead_id] == event.value) continue;
      pin_values[lead_id] = event.value;
      schedule_gate_update(circuit.lead(lead_id).sink, event.time);
      continue;
    }
    const GateId id = event.target;
    if (result.final_values[id] == event.value) continue;
    result.final_values[id] = event.value;
    result.last_change[id] = event.time;
    if (record_po_history && po_index[id] != static_cast<std::size_t>(-1))
      result.po_history[po_index[id]].emplace_back(event.time, event.value);
    for (LeadId lead_id : circuit.gate(id).fanout_leads)
      events.push(Event{event.time + delays.lead_delay[lead_id], sequence++,
                        /*is_lead=*/true, lead_id, event.value});
  }
  return result;
}

double path_delay(const Circuit& circuit, const DelayModel& delays,
                  const std::vector<LeadId>& leads) {
  double total = 0.0;
  if (leads.empty()) return total;
  total += delays.gate_delay[circuit.lead(leads.front()).driver];
  for (LeadId lead_id : leads) {
    total += delays.lead_delay[lead_id];
    total += delays.gate_delay[circuit.lead(lead_id).sink];
  }
  return total;
}

}  // namespace rd
