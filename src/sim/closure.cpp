#include "sim/closure.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace rd {

namespace {

/// Used bytes of the closure's variable-size tables.
std::uint64_t table_bytes(std::size_t rows, std::size_t trail_words,
                          std::size_t dense_words, std::size_t csr_gates) {
  return rows * sizeof(StaticClosure::Row) +
         trail_words * sizeof(std::uint64_t) +
         dense_words * sizeof(std::uint64_t) + csr_gates * sizeof(GateId);
}

}  // namespace

StaticClosure::StaticClosure(const CompiledCircuit& compiled,
                             const ClosureBuildOptions& options)
    : compiled_(&compiled),
      guard_(options.guard),
      backward_implications_(options.backward_implications) {
  Stopwatch watch;
  const std::size_t num_gates = compiled.num_gates();
  words_per_row_ = (num_gates + 63) / 64;
  rows_.resize(2 * num_gates);

  const std::uint64_t limit_bytes =
      options.memory_limit_mb * std::uint64_t{1024} * 1024;
  std::uint64_t charged = 0;
  // Charges the growth of the tables since the last call against both
  // budgets.  The build deliberately never calls guard->check(): a
  // check consumes an injection/work slot and would shift every
  // downstream trip point, breaking the closure's bit-identity contract
  // with closure-free runs.  Trip state and the memory ceiling are
  // evaluated directly instead.
  const auto charge = [&](std::uint64_t total) {
    if (total > charged) {
      if (guard_ != nullptr) guard_->add_memory(total - charged);
      accounted_bytes_ += total - charged;
      charged = total;
    }
    if (limit_bytes != 0 && total > limit_bytes) {
      if (guard_ != nullptr) guard_->trip(AbortReason::kMemory);
      throw GuardTrippedError(AbortReason::kMemory);
    }
    if (guard_ != nullptr) {
      const std::uint64_t ceiling = guard_->options().memory_limit_bytes;
      if (ceiling != 0 && guard_->memory_used() > ceiling)
        guard_->trip(AbortReason::kMemory);
      if (guard_->tripped()) throw GuardTrippedError(guard_->reason());
    }
  };
  charge(table_bytes(rows_.size(), 0, 0, 0));

  ImplicationEngine engine(compiled, backward_implications_);
  // Footprint scratch: a dense bitset plus the insertion-ordered list
  // of set gates, so clearing costs O(footprint) instead of O(V).
  std::vector<std::uint64_t> scratch(words_per_row_, 0);
  std::vector<GateId> foot;
  std::vector<GateId> examined;  // P = W ∪ sinks(W)
  const auto add = [&](GateId gate) {
    const std::uint64_t bit = std::uint64_t{1} << (gate & 63);
    if ((scratch[gate >> 6] & bit) != 0) return false;
    scratch[gate >> 6] |= bit;
    foot.push_back(gate);
    return true;
  };

  for (GateId gate = 0; gate < static_cast<GateId>(num_gates); ++gate) {
    for (const Value3 value : {Value3::kZero, Value3::kOne}) {
      engine.reset();
      const ImplicationStats before = engine.stats();
      const bool ok = engine.assign(gate, value);
      const std::size_t assigned = engine.num_assigned();

      Row row;
      row.ok = ok;
      row.delta = engine.stats().delta_since(before);
      row.trail_begin = static_cast<std::uint32_t>(trail_pool_.size());
      row.trail_count = static_cast<std::uint32_t>(assigned);
      const std::uint64_t* trail = engine.trail_data();
      trail_pool_.insert(trail_pool_.end(), trail, trail + assigned);

      // Footprint F = P ∪ fanins(P), P = W ∪ sinks(W): every gate whose
      // value or counters the recorded drain read or wrote.
      foot.clear();
      examined.clear();
      for (std::size_t i = 0; i < assigned; ++i) {
        const GateId w = entry_gate(trail[i]);
        if (add(w)) examined.push_back(w);
        const GateWord* sink = compiled.fanout_sink_begin(w);
        const GateWord* const end = sink + compiled.fanout_count(w);
        for (; sink != end; ++sink) {
          const GateId s = gate_word::id(*sink);
          if (add(s)) examined.push_back(s);
        }
      }
      for (const GateId p : examined) {
        const GateId* fanin = compiled.fanin_begin(p);
        const GateId* const end = fanin + compiled.fanin_count(p);
        for (; fanin != end; ++fanin) add(*fanin);
      }

      row.foot_count = static_cast<std::uint32_t>(foot.size());
      const bool dense =
          options.row_mode == ClosureRowMode::kAllDense ||
          (options.row_mode == ClosureRowMode::kAuto &&
           foot.size() * sizeof(GateId) >=
               words_per_row_ * sizeof(std::uint64_t));
      row.dense = dense;
      if (dense) {
        row.foot_begin = static_cast<std::uint32_t>(dense_words_.size());
        dense_words_.insert(dense_words_.end(), scratch.begin(),
                            scratch.end());
        ++stats_.dense_rows;
      } else {
        row.foot_begin = static_cast<std::uint32_t>(csr_gates_.size());
        std::sort(foot.begin(), foot.end());
        csr_gates_.insert(csr_gates_.end(), foot.begin(), foot.end());
        ++stats_.csr_rows;
      }
      for (const GateId g : foot) scratch[g >> 6] = 0;

      rows_[literal_index(gate, value)] = row;
      ++stats_.literals;
      charge(table_bytes(rows_.size(), trail_pool_.size(),
                         dense_words_.size(), csr_gates_.size()));
    }
  }

  stats_.bytes = charged;
  stats_.build_seconds = watch.elapsed_seconds();
}

StaticClosure::~StaticClosure() {
  if (guard_ != nullptr) guard_->sub_memory(accounted_bytes_);
}

}  // namespace rd
