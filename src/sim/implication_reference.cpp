#include "sim/implication_reference.h"

namespace rd {

ReferenceImplicationEngine::ReferenceImplicationEngine(
    const Circuit& circuit, bool backward_implications)
    : circuit_(&circuit),
      backward_implications_(backward_implications),
      values_(circuit.num_gates(), Value3::kUnknown) {}

bool ReferenceImplicationEngine::assign(GateId id, Value3 value) {
  if (!is_known(value)) return true;
  const Value3 current = values_[id];
  if (is_known(current)) {
    if (current != value) ++stats_.conflicts;
    return current == value;
  }
  queue_.clear();
  queue_head_ = 0;
  set_value(id, value);
  const bool ok = propagate();
  if (!ok) ++stats_.conflicts;
  return ok;
}

void ReferenceImplicationEngine::undo_to(std::size_t mark) {
  while (trail_.size() > mark) {
    values_[trail_.back()] = Value3::kUnknown;
    trail_.pop_back();
  }
}

void ReferenceImplicationEngine::set_value(GateId id, Value3 value) {
  ++stats_.assignments;
  values_[id] = value;
  trail_.push_back(id);
  queue_.push_back(id);
  for (LeadId lead_id : circuit_->gate(id).fanout_leads)
    queue_.push_back(circuit_->lead(lead_id).sink);
}

bool ReferenceImplicationEngine::propagate() {
  while (queue_head_ < queue_.size()) {
    const GateId id = queue_[queue_head_++];
    ++stats_.propagations;
    if (!examine(id)) return false;
  }
  return true;
}

bool ReferenceImplicationEngine::examine(GateId id) {
  const Gate& gate = circuit_->gate(id);
  if (gate.type == GateType::kInput) return true;

  const Value3 out = values_[id];

  // Single-input gates: value equivalence (modulo inversion).
  if (gate.type == GateType::kNot || gate.type == GateType::kBuf ||
      gate.type == GateType::kOutput) {
    const bool inverting = gate.type == GateType::kNot;
    const GateId source = gate.fanins[0];
    const Value3 in = values_[source];
    if (is_known(in)) {
      const Value3 implied = inverting ? negate(in) : in;
      if (is_known(out)) return out == implied;
      set_value(id, implied);
      return true;
    }
    if (is_known(out) && backward_implications_) {
      ++stats_.backward;
      set_value(source, inverting ? negate(out) : out);
    }
    return true;
  }

  // Gates with a controlling value.
  const Value3 ctrl = to_value3(controlling_value(gate.type));
  const Value3 nc = negate(ctrl);
  const Value3 out_controlled = to_value3(controlled_output(gate.type));
  const Value3 out_noncontrolled = to_value3(noncontrolled_output(gate.type));

  std::size_t unknown_count = 0;
  GateId last_unknown = kNullGate;
  bool any_controlling = false;
  for (GateId fanin : gate.fanins) {
    const Value3 in = values_[fanin];
    if (!is_known(in)) {
      ++unknown_count;
      last_unknown = fanin;
    } else if (in == ctrl) {
      any_controlling = true;
    }
  }

  // Forward implication.
  if (any_controlling) {
    if (is_known(out)) {
      if (out != out_controlled) return false;
    } else {
      set_value(id, out_controlled);
    }
    return true;
  }
  if (unknown_count == 0) {
    if (is_known(out)) return out == out_noncontrolled;
    set_value(id, out_noncontrolled);
    return true;
  }

  // Backward implication (no controlling input known, some unknown).
  if (!is_known(out) || !backward_implications_) return true;
  if (out == out_noncontrolled) {
    // Every input must be non-controlling.
    for (GateId fanin : gate.fanins)
      if (!is_known(values_[fanin])) {
        ++stats_.backward;
        set_value(fanin, nc);
      }
    return true;
  }
  // Output is the controlled value but no controlling input is known:
  // if exactly one input is unknown it must be controlling.
  if (unknown_count == 1) {
    ++stats_.backward;
    set_value(last_unknown, ctrl);
  }
  return true;
}

}  // namespace rd
