// Event-driven timed simulation with per-gate and per-lead delays and
// arbitrary initial line values.
//
// This models the paper's notion of a manufactured implementation C_m:
// same gate-level structure as C, arbitrary gate/lead delays (Section
// II).  It is used by the property tests for Theorem 1: for any delay
// assignment and any input vector v, the primary output must settle on
// f(v) no later than the largest delay of any logical path in the
// stabilizing system sigma(v).
//
// Transport-delay semantics: every input change re-evaluates the gate
// and, if the output would change, schedules the new value after the
// gate delay.  Initial values may be inconsistent (lines hold leftovers
// of an arbitrary previous state), as the delay-fault model requires.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "util/exec_guard.h"

namespace rd {

/// Delay annotation: one delay per gate (switching delay) and one per
/// lead (wire delay).  All delays must be positive for gates other than
/// PIs/POs markers (zero is allowed and treated as an instantaneous
/// element).
struct DelayModel {
  std::vector<double> gate_delay;  // indexed by GateId
  std::vector<double> lead_delay;  // indexed by LeadId

  static DelayModel zero(const Circuit& circuit);
};

/// Knobs for one timed-simulation run.
struct TimedSimOptions {
  /// Events processed before the run is declared incomplete — the
  /// safety valve against oscillating circuits (zero-delay loops or
  /// adversarial delay assignments never quiesce).  0 = unlimited.
  std::uint64_t event_budget = 50'000'000;

  /// Optional execution guard, polled every kGuardStride events.
  ExecGuard* guard = nullptr;
};

/// Result of a timed simulation run.
struct TimedResult {
  /// Final value per gate output.
  std::vector<bool> final_values;
  /// Time of the last value change per gate output (0 if it never
  /// changed after t=0).
  std::vector<double> last_change;
  /// Full event history (time, new value) per primary output, in time
  /// order — only populated when requested.  Index-aligned with
  /// circuit.outputs().
  std::vector<std::vector<std::pair<double, bool>>> po_history;

  /// False when the event budget or the guard stopped the run before
  /// quiescence; values then reflect the state at the abort point.
  bool completed = true;

  /// kWorkBudget when the event budget ran out (oscillation
  /// suspected), otherwise the guard's trip cause; kNone on completed
  /// runs.
  AbortReason abort_reason = AbortReason::kNone;
};

/// Runs the two-pattern experiment: line outputs start at
/// `initial_values` (arbitrary, possibly inconsistent), the PIs switch
/// to `input_values` at t=0, and the simulation runs to quiescence.
/// `record_po_history` additionally captures every PO waveform event
/// (needed to sample outputs at a clock instant).  A budget-stopped
/// run is reported through TimedResult::completed / abort_reason, not
/// an exception (only arity mismatches still throw).
TimedResult simulate_timed(const Circuit& circuit, const DelayModel& delays,
                           const std::vector<bool>& initial_values,
                           const std::vector<bool>& input_values,
                           bool record_po_history = false,
                           const TimedSimOptions& options = {});

/// Sum of gate and lead delays along a physical path given as a gate
/// sequence (PI ... PO); leads between consecutive gates are resolved
/// via the specified input pins.
double path_delay(const Circuit& circuit, const DelayModel& delays,
                  const std::vector<LeadId>& leads);

}  // namespace rd
