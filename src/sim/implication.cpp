#include "sim/implication.h"

#include <algorithm>
#include <limits>

#include "sim/closure.h"

namespace rd {

ImplicationEngine::ImplicationEngine(const CompiledCircuit& compiled,
                                     bool backward_implications)
    : compiled_(&compiled),
      backward_implications_(backward_implications),
      states_(compiled.num_gates()),
      scratch_(2 * compiled.num_gates() + compiled.num_leads() + 1),
      trail_(scratch_.data()),
      queue_(scratch_.data() + compiled.num_gates()) {}

ImplicationEngine::ImplicationEngine(const Circuit& circuit,
                                     bool backward_implications)
    : owned_(std::make_unique<CompiledCircuit>(circuit)),
      compiled_(owned_.get()),
      backward_implications_(backward_implications),
      states_(circuit.num_gates()),
      scratch_(2 * circuit.num_gates() + circuit.num_leads() + 1),
      trail_(scratch_.data()),
      queue_(scratch_.data() + circuit.num_gates()) {}

void ImplicationEngine::attach_closure(const StaticClosure* closure) {
  // A closure recorded over a different circuit or implication mode
  // would install wrong rows; ignoring it keeps attachment safe to
  // call unconditionally from the drivers.
  if (closure != nullptr &&
      (&closure->compiled() != compiled_ ||
       closure->backward_implications() != backward_implications_)) {
    closure_ = nullptr;
    return;
  }
  closure_ = closure;
}

// Out of line on purpose: assign()'s scalar body stays the compact hot
// path, and the closure probe only runs when a closure is attached.
bool ImplicationEngine::try_closure(GateId id, Value3 value, bool* ok) {
  const StaticClosure::Row& row = closure_->row(id, value);
  // Deterministic skip: scanning a long trail against a narrow row
  // costs more than the drain it would save.  Purely a perf heuristic —
  // a skip is a miss, and the scalar drain is always exact.
  if (trail_size_ > 32 + 4 * static_cast<std::size_t>(row.trail_count)) {
    ++closure_misses_;
    return false;
  }
  for (std::size_t i = 0; i < trail_size_; ++i)
    if (closure_->footprint_contains(row,
                                     static_cast<GateId>(trail_[i]))) {
      ++closure_misses_;
      return false;
    }

  // Disjoint footprint: the drain from the current state is event-
  // identical to the recorded empty-state drain (every gate it examines
  // or reads is unassigned, and every counter it consults carries no
  // contribution from the current assignments — an assigned fanin of an
  // examined gate would be in the footprint).  Install the recorded
  // trail exactly as set_value would have: value stamp, trail entry,
  // sink tallies with branchless stale-epoch revival — minus the queue
  // pushes, pops and examinations, which is the saved work.
  ++closure_hits_;
  const std::uint64_t* entry = closure_->trail_entries(row);
  const std::uint64_t* const end = entry + row.trail_count;
  GateState* const states = states_.data();
  const std::uint32_t epoch = epoch_;
  for (; entry != end; ++entry) {
    const std::uint64_t packed = *entry;
    const GateId gate = static_cast<GateId>(packed);
    const Value3 assigned = unpack_value(packed);
    states[gate].value_half = pack_value(epoch, assigned);
    trail_[trail_size_++] = packed;
    const GateWord* sink = compiled_->fanout_sink_begin(gate);
    const GateWord* const send = sink + compiled_->fanout_count(gate);
    for (; sink != send; ++sink) {
      const GateWord word = *sink;
      GateState& counter = states[gate_word::id(word)];
      const std::uint64_t half = counter.counter_half;
      const std::uint64_t live_tallies =
          static_cast<std::uint32_t>(half) == epoch
              ? half & 0xFFFFFFFF00000000ull
              : 0ull;
      counter.counter_half = (live_tallies | epoch) +
                             tally_delta(assigned, gate_word::ctrl(word));
    }
  }
  // The recorded delta replays the drain's exact charges (assignments,
  // propagations, the conflict if the row is unsatisfiable), keeping
  // the cumulative event stream bit-identical to the scalar engine.
  stats_.merge(row.delta);
  *ok = row.ok;
  return true;
}

bool ImplicationEngine::assign(GateId id, Value3 value) {
  if (!is_known(value)) return true;
  const Value3 current = this->value(id);
  if (is_known(current)) {
    if (current != value) ++stats_.conflicts;
    return current == value;
  }
  if (closure_ != nullptr) {
    bool ok;
    if (try_closure(id, value, &ok)) return ok;
  }
  queue_head_ = 0;
  queue_tail_ = 0;
  const std::size_t trail_before = trail_size_;
  set_value(id, value);
  const bool ok = propagate();
  // Event counters charged as batches after the drain instead of
  // inside the hot loops, without changing their values: one pop = one
  // propagation event (a conflicted drain stops right after the
  // failing pop, so the batch is still exact), and one trail entry =
  // one assignment event (the trail only grows during a drain).
  stats_.propagations += queue_head_;
  stats_.assignments += trail_size_ - trail_before;
  if (!ok) ++stats_.conflicts;
  return ok;
}

void ImplicationEngine::rollback(std::size_t mark) {
  while (trail_size_ > mark) {
    // The trail entry carries the assigned value, so the undo never
    // has to read the state record back before clearing it.
    const std::uint64_t entry = trail_[--trail_size_];
    const GateId id = static_cast<GateId>(entry);
    const Value3 value = unpack_value(entry);
    states_[id].value_half = 0;
    // Roll the sinks' fanin tallies back.  Their counter epochs are
    // necessarily current: set_value stamped them when `id` was set.
    const GateWord* sink = compiled_->fanout_sink_begin(id);
    const GateWord* const end = sink + compiled_->fanout_count(id);
    for (; sink != end; ++sink)
      states_[gate_word::id(*sink)].counter_half -=
          tally_delta(value, gate_word::ctrl(*sink));
  }
}

void ImplicationEngine::reset() {
  trail_size_ = 0;
  queue_head_ = 0;
  queue_tail_ = 0;
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap (once per ~4e9 resets): fall back to the O(V) wipe so
    // stale stamps from the previous cycle can never alias.
    std::fill(states_.begin(), states_.end(), GateState{});
    epoch_ = 1;
    return;
  }
  ++epoch_;
}

// The out-of-line wrapper serves the cold call sites (assign roots,
// backward-rule scans); the hot forward-derivation sites in examine()
// call the force-inlined body directly so the drain loop keeps its
// registers across the common derivation.
__attribute__((always_inline)) inline void ImplicationEngine::set_value_inline(
    GateId id, Value3 value) {
  states_[id].value_half = pack_value(epoch_, value);
  trail_[trail_size_++] = pack_value(id, value);
  GateWord* const queue = queue_;
  GateState* const states = states_.data();
  const std::uint32_t epoch = epoch_;
  std::size_t tail = queue_tail_;
  queue[tail++] = compiled_->gate_words()[id];
  const GateWord* sink = compiled_->fanout_sink_begin(id);
  const GateWord* const end = sink + compiled_->fanout_count(id);
  for (; sink != end; ++sink) {
    const GateWord word = *sink;
    queue[tail++] = word;
    GateState& counter = states[gate_word::id(word)];
    // Branchless stale-counter revival: zero the tallies when the
    // stamp is from an older epoch, then bump — compiles to cmov
    // instead of a poorly predicted first-touch branch.
    const std::uint64_t half = counter.counter_half;
    const std::uint64_t live_tallies =
        static_cast<std::uint32_t>(half) == epoch
            ? half & 0xFFFFFFFF00000000ull
            : 0ull;
    counter.counter_half =
        (live_tallies | epoch) + tally_delta(value, gate_word::ctrl(word));
  }
  queue_tail_ = tail;
}

void ImplicationEngine::set_value(GateId id, Value3 value) {
  set_value_inline(id, value);
}

bool ImplicationEngine::propagate() {
  while (queue_head_ != queue_tail_) {
    const GateWord word = queue_[queue_head_++];
    if (!examine(word)) return false;
  }
  return true;
}

// Forced into propagate()'s drain loop: one call per queue pop is the
// hottest edge in the whole classifier, and keeping the loop state in
// registers across the examination is worth more than the code size.
//
// The queue entry is a packed GateWord, so the gate's entire static
// semantics arrive with the pop — decoding them is shift-and-mask ALU
// work, and the only dependent memory access left on the skip/verify
// fast path is the GateState load.
__attribute__((always_inline)) inline bool ImplicationEngine::examine(
    GateWord word) {
  const GateId id = gate_word::id(word);
  const GateSemantics::Kind kind = gate_word::kind(word);
  // One 16-byte load covers both the gate's value and its fanin
  // tallies (a value() call would reload the same record below).
  const GateState state = states_[id];
  const bool out_known =
      static_cast<std::uint32_t>(state.value_half) == epoch_;
  const Value3 out = out_known ? unpack_value(state.value_half)
                               : Value3::kUnknown;

  // Gates with a controlling value (semantics predecoded at compile)
  // come first: they are the bulk of every circuit and of every queue.
  // The fanin tallies maintained by set_value/rollback stand in for the
  // classic fanin scan: unknown pins = total pins - known pins, and a
  // controlling pin exists iff the ctrl tally is nonzero.  The scan
  // survives only in the backward rules that need pin identities.
  if (kind == GateSemantics::Kind::kControlling) {
    const std::uint32_t tallies =
        static_cast<std::uint32_t>(state.counter_half) == epoch_
            ? static_cast<std::uint32_t>(state.counter_half >> 32)
            : 0u;
    const bool any_controlling = (tallies >> 16) != 0;
    const std::uint32_t unknown_count =
        gate_word::fanin_count(word) - (tallies & 0xFFFFu);

    // The forward rules collapse to one forced-output computation:
    // a controlling input forces out_controlled, an all-known
    // non-controlling fanin forces out_noncontrolled (a controlling
    // pin wins when both hold, matching the classic rule order).
    const bool forced = any_controlling | (unknown_count == 0);
    const Value3 expected = any_controlling
                                ? gate_word::out_controlled(word)
                                : gate_word::out_noncontrolled(word);

    // Three of the four (forced, out_known) cases — the no-op skip,
    // the verify-pass, and the verify-conflict — are pure boolean
    // results, so they share one branchless return behind a single
    // well-predicted branch.  Only the two state-mutating actions
    // (forward derivation, backward reasoning) take the cold side.
    const bool act_forward = forced & !out_known;
    const bool act_backward = out_known & !forced;
    if (__builtin_expect(!(act_forward | act_backward), 1))
      return !forced | (out == expected);
    if (act_forward) {
      set_value_inline(id, expected);
      return true;
    }

    // Backward implication: output known, no controlling input known,
    // some pin unknown.
    if (!backward_implications_) return true;
    const GateId* const fanin_begin = compiled_->fanin_begin(id);
    const GateId* const fanin_end =
        fanin_begin + gate_word::fanin_count(word);
    if (out == gate_word::out_noncontrolled(word)) {
      // Every input must be non-controlling.
      for (const GateId* fanin = fanin_begin; fanin != fanin_end; ++fanin)
        if (!is_known(value(*fanin))) {
          ++stats_.backward;
          set_value(*fanin, gate_word::noncontrolling(word));
        }
      return true;
    }
    // Output is the controlled value but no controlling input is
    // known: if exactly one input is unknown it must be controlling.
    if (unknown_count == 1) {
      GateId last_unknown = kNullGate;
      for (const GateId* fanin = fanin_begin; fanin != fanin_end; ++fanin)
        if (!is_known(value(*fanin))) last_unknown = *fanin;
      ++stats_.backward;
      set_value(last_unknown, gate_word::ctrl(word));
    }
    return true;
  }

  if (kind == GateSemantics::Kind::kInput) return true;

  // Single-input gates: value equivalence (modulo inversion), under
  // the same branch discipline as the controlling block — skip,
  // verify-pass and verify-conflict share one branchless return.
  const bool inverting = kind == GateSemantics::Kind::kSingleInv;
  const GateId source = compiled_->single_sources()[id];
  const std::uint64_t source_half = states_[source].value_half;
  const bool in_known = static_cast<std::uint32_t>(source_half) == epoch_;
  const Value3 in = unpack_value(source_half);
  const Value3 implied = inverting ? negate(in) : in;
  const bool act_forward = in_known & !out_known;
  const bool act_backward = out_known & !in_known;
  if (__builtin_expect(!(act_forward | act_backward), 1))
    return !in_known | (out == implied);
  if (act_forward) {
    set_value_inline(id, implied);
    return true;
  }
  if (backward_implications_) {
    ++stats_.backward;
    set_value(source, inverting ? negate(out) : out);
  }
  return true;
}

}  // namespace rd
