#include "unfold/xfault.h"

#include <queue>
#include <stdexcept>

#include "sim/logic_sim.h"
#include "sim/value.h"

namespace rd {

namespace {

/// Faulty-machine value lattice: known 0/1, X injected by a kill
/// (permanently undetermined), or not yet determined by the partial PI
/// assignment.
enum class FVal : std::uint8_t { kZero = 0, kOne = 1, kXKill = 2, kUnknown = 3 };

constexpr FVal to_fval(Value3 value) {
  switch (value) {
    case Value3::kZero: return FVal::kZero;
    case Value3::kOne: return FVal::kOne;
    case Value3::kUnknown: return FVal::kUnknown;
  }
  return FVal::kUnknown;
}

constexpr bool is_binary(FVal value) {
  return value == FVal::kZero || value == FVal::kOne;
}

constexpr FVal fval_of_bool(bool bit) { return bit ? FVal::kOne : FVal::kZero; }

constexpr FVal negate(FVal value) {
  switch (value) {
    case FVal::kZero: return FVal::kOne;
    case FVal::kOne: return FVal::kZero;
    default: return value;
  }
}

/// Complete branch-and-bound search for a vector that leaves a PO
/// ternary-undetermined under the kill set's X injection.  The
/// good/faulty machine pair is maintained *incrementally*: assigning a
/// PI propagates value changes level by level through the affected
/// cone only, and every overwritten value is recorded on a trail so
/// backtracking restores the exact prior state — full resimulation per
/// search node would dominate the baseline's runtime on leaf-dags.
class KillSearch {
 public:
  KillSearch(const Circuit& circuit, const KillSet& kills,
             std::uint64_t max_nodes, LeadId focus_lead, bool focus_value)
      : circuit_(circuit),
        kills_(kills),
        max_nodes_(max_nodes),
        focus_lead_(focus_lead),
        focus_value_(focus_value) {
    const std::size_t n = circuit.num_gates();
    good_.assign(n, Value3::kUnknown);
    faulty_.assign(n, FVal::kUnknown);
    pi_values_.assign(circuit.inputs().size(), Value3::kUnknown);
    pi_index_of_gate_.assign(n, kNone);
    for (std::size_t i = 0; i < circuit.inputs().size(); ++i)
      pi_index_of_gate_[circuit.inputs()[i]] = i;
    for (LeadId lead = 0; lead < circuit.num_leads(); ++lead)
      if (kills.killed(lead, false) || kills.killed(lead, true))
        killed_leads_.push_back(lead);
  }

  KillVerdict run() {
    if (killed_leads_.empty()) return KillVerdict::kRedundant;
    try {
      return recurse() ? KillVerdict::kTestable : KillVerdict::kRedundant;
    } catch (const BudgetExceeded&) {
      return KillVerdict::kAborted;
    }
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  struct BudgetExceeded {};

  // ---- incremental machine maintenance ------------------------------

  /// Faulty value present on a lead: the driver's faulty value, turned
  /// into X when the lead is killed for the driver's (good) value.
  FVal lead_fval(LeadId lead, GateId driver) const {
    if (is_known(good_[driver]) && kills_.killed(lead, to_bool(good_[driver])))
      return FVal::kXKill;
    return faulty_[driver];
  }

  Value3 eval_good(GateId id) const {
    const Gate& gate = circuit_.gate(id);
    scratch3_.clear();
    for (GateId fanin : gate.fanins) scratch3_.push_back(good_[fanin]);
    return eval_gate3(gate.type, scratch3_.data(), scratch3_.size());
  }

  FVal eval_faulty(GateId id) const {
    const Gate& gate = circuit_.gate(id);
    switch (gate.type) {
      case GateType::kOutput:
      case GateType::kBuf:
        return lead_fval(gate.fanin_leads[0], gate.fanins[0]);
      case GateType::kNot:
        return negate(lead_fval(gate.fanin_leads[0], gate.fanins[0]));
      default:
        break;
    }
    const FVal ctrl = fval_of_bool(controlling_value(gate.type));
    bool any_unknown = false;
    bool any_xkill = false;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const FVal in = lead_fval(gate.fanin_leads[pin], gate.fanins[pin]);
      if (in == ctrl) return fval_of_bool(controlled_output(gate.type));
      if (in == FVal::kUnknown) any_unknown = true;
      if (in == FVal::kXKill) any_xkill = true;
    }
    if (any_unknown) return FVal::kUnknown;
    if (any_xkill) return FVal::kXKill;
    return fval_of_bool(noncontrolled_output(gate.type));
  }

  void store(GateId id, Value3 good, FVal faulty) {
    trail_.push_back(Saved{id, good_[id], faulty_[id]});
    good_[id] = good;
    faulty_[id] = faulty;
    for (LeadId lead : circuit_.gate(id).fanout_leads)
      queue_.push({circuit_.topo_rank(circuit_.lead(lead).sink),
                   circuit_.lead(lead).sink});
  }

  void assign_pi(std::size_t pi, Value3 value) {
    marks_.push_back(trail_.size());
    pi_values_[pi] = value;
    store(circuit_.inputs()[pi], value, to_fval(value));
    while (!queue_.empty()) {
      const GateId id = queue_.top().second;
      queue_.pop();
      const Value3 good = eval_good(id);
      const FVal faulty = eval_faulty(id);
      if (good == good_[id] && faulty == faulty_[id]) continue;
      store(id, good, faulty);
    }
  }

  void undo_pi(std::size_t pi) {
    pi_values_[pi] = Value3::kUnknown;
    const std::size_t mark = marks_.back();
    marks_.pop_back();
    while (trail_.size() > mark) {
      const Saved& saved = trail_.back();
      good_[saved.gate] = saved.good;
      faulty_[saved.gate] = saved.faulty;
      trail_.pop_back();
    }
  }

  // ---- search --------------------------------------------------------

  /// X-path check: prunes branches where no injected X can still reach
  /// a PO.  A gate can pass an X only while its faulty value is
  /// undetermined; a source is a lead that currently carries X or a
  /// killed lead whose driver value is still open (activatable).
  bool x_path_exists() {
    x_reach_.assign(circuit_.num_gates(), false);
    x_stack_.clear();
    for (GateId po : circuit_.outputs()) {
      if (!is_binary(faulty_[po])) {
        x_reach_[po] = true;
        x_stack_.push_back(po);
      }
    }
    while (!x_stack_.empty()) {
      const GateId id = x_stack_.back();
      x_stack_.pop_back();
      for (GateId fanin : circuit_.gate(id).fanins) {
        if (x_reach_[fanin] || is_binary(faulty_[fanin])) continue;
        x_reach_[fanin] = true;
        x_stack_.push_back(fanin);
      }
    }
    for (LeadId lead : killed_leads_) {
      const Lead& l = circuit_.lead(lead);
      if (!x_reach_[l.sink]) continue;
      // X already on the lead, or the driver could still be set to the
      // killed polarity.
      if (lead_fval(lead, l.driver) == FVal::kXKill) return true;
      if (!is_known(good_[l.driver])) return true;
    }
    return false;
  }

  bool recurse() {
    if (++nodes_ > max_nodes_) throw BudgetExceeded{};

    // Focused mode: only vectors activating the focused kill matter.
    if (focus_lead_ != kNullLead) {
      const GateId driver = circuit_.lead(focus_lead_).driver;
      if (is_known(good_[driver]) && to_bool(good_[driver]) != focus_value_)
        return false;
    }

    // Detected: a PO whose fault-free value is determined but whose
    // faulty (X-injected) value is not.
    bool all_po_faulty_known = true;
    GateId xkill_po = kNullGate;
    for (GateId po : circuit_.outputs()) {
      if (faulty_[po] == FVal::kXKill) {
        if (is_known(good_[po])) return true;
        xkill_po = po;
      }
      if (!is_binary(faulty_[po])) all_po_faulty_known = false;
    }
    if (all_po_faulty_known) return false;  // X can never reach a PO now
    if (!x_path_exists()) return false;     // every X source is blocked

    // Choose an objective.
    GateId objective_gate = kNullGate;
    Value3 objective_value = Value3::kUnknown;

    if (xkill_po != kNullGate) {
      // X reached a PO whose good value is still open: close it.
      objective_gate = xkill_po;
      objective_value = Value3::kOne;  // branching covers both values
    } else if (focus_lead_ != kNullLead &&
               !is_known(good_[circuit_.lead(focus_lead_).driver])) {
      // Activate the focused kill before anything else.
      objective_gate = circuit_.lead(focus_lead_).driver;
      objective_value = to_value3(focus_value_);
    } else {
      // Is any killed lead activated (producing X)?
      bool activated = false;
      for (LeadId lead : killed_leads_) {
        const GateId driver = circuit_.lead(lead).driver;
        if (is_known(good_[driver]) &&
            kills_.killed(lead, to_bool(good_[driver]))) {
          activated = true;
          break;
        }
      }
      if (activated) {
        // Propagate: find a gate with an X input whose faulty output is
        // still undetermined, and feed one of its open side inputs the
        // non-controlling value.
        for (GateId id : circuit_.topo_order()) {
          const Gate& gate = circuit_.gate(id);
          if (gate.type == GateType::kInput) continue;
          if (faulty_[id] != FVal::kUnknown) continue;
          bool has_x_input = false;
          for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
            if (lead_fval(gate.fanin_leads[pin], gate.fanins[pin]) ==
                FVal::kXKill) {
              has_x_input = true;
              break;
            }
          }
          if (!has_x_input) continue;
          if (!has_controlling_value(gate.type)) continue;
          const Value3 nc = to_value3(noncontrolling_value(gate.type));
          for (GateId fanin : gate.fanins) {
            if (!is_known(good_[fanin])) {
              objective_gate = fanin;
              objective_value = nc;
              break;
            }
          }
          if (objective_gate != kNullGate) break;
        }
      }
      if (objective_gate == kNullGate) {
        // Activate a (further) killed lead with an open driver value.
        for (LeadId lead : killed_leads_) {
          const GateId driver = circuit_.lead(lead).driver;
          if (is_known(good_[driver])) continue;
          objective_gate = driver;
          objective_value =
              kills_.killed(lead, true) ? Value3::kOne : Value3::kZero;
          break;
        }
      }
      if (objective_gate == kNullGate) {
        // Fallback that keeps the search complete when the guidance
        // heuristics find nothing: branch on any open PI.  (The
        // all-PO-determined prune above is the only way to declare a
        // branch dead, so exhausting PIs this way is always sound.)
        for (std::size_t i = 0; i < pi_values_.size(); ++i) {
          if (!is_known(pi_values_[i])) {
            objective_gate = circuit_.inputs()[i];
            objective_value = Value3::kZero;
            break;
          }
        }
        if (objective_gate == kNullGate) return false;  // fully assigned
      }
    }

    // Backtrace on the good machine.
    GateId gate = objective_gate;
    Value3 value = objective_value;
    while (circuit_.gate(gate).type != GateType::kInput) {
      const Gate& g = circuit_.gate(gate);
      GateId next = kNullGate;
      if (g.type == GateType::kNot || g.type == GateType::kBuf ||
          g.type == GateType::kOutput) {
        next = g.fanins[0];
        if (g.type == GateType::kNot) value = rd::negate(value);
      } else {
        const Value3 ctrl = to_value3(controlling_value(g.type));
        const Value3 needed =
            value == to_value3(controlled_output(g.type)) ? ctrl
                                                          : rd::negate(ctrl);
        for (GateId fanin : g.fanins) {
          if (!is_known(good_[fanin])) {
            next = fanin;
            break;
          }
        }
        if (next == kNullGate) return false;
        value = needed;
      }
      gate = next;
    }
    const std::size_t pi = pi_index_of_gate_[gate];
    if (pi == kNone || is_known(pi_values_[pi])) return false;

    assign_pi(pi, value);
    if (recurse()) return true;
    undo_pi(pi);
    assign_pi(pi, rd::negate(value));
    if (recurse()) return true;
    undo_pi(pi);
    return false;
  }

  struct Saved {
    GateId gate;
    Value3 good;
    FVal faulty;
  };

  const Circuit& circuit_;
  const KillSet& kills_;
  std::uint64_t max_nodes_;
  LeadId focus_lead_ = kNullLead;
  bool focus_value_ = false;
  std::uint64_t nodes_ = 0;
  std::vector<Value3> good_;
  std::vector<FVal> faulty_;
  std::vector<Value3> pi_values_;
  std::vector<std::size_t> pi_index_of_gate_;
  std::vector<LeadId> killed_leads_;
  std::vector<Saved> trail_;
  std::vector<std::size_t> marks_;
  std::priority_queue<std::pair<std::uint32_t, GateId>,
                      std::vector<std::pair<std::uint32_t, GateId>>,
                      std::greater<>>
      queue_;
  mutable std::vector<Value3> scratch3_;
  std::vector<bool> x_reach_;
  std::vector<GateId> x_stack_;
};

}  // namespace

KillVerdict kill_set_testable(const Circuit& circuit, const KillSet& kills,
                              std::uint64_t max_nodes, LeadId focus_lead,
                              bool focus_value) {
  KillSearch search(circuit, kills, max_nodes, focus_lead, focus_value);
  return search.run();
}

BigUint AlivePathCounts::through(const Circuit& circuit, LeadId lead,
                                 bool value) const {
  if (killed_ != nullptr && killed_->killed(lead, value)) return BigUint();
  const Lead& l = circuit.lead(lead);
  const bool sink_out = value != inverts(circuit.gate(l.sink).type);
  return arrivals(l.driver, value) * departures(l.sink, sink_out);
}

AlivePathCounts count_alive_paths(const Circuit& circuit,
                                  const KillSet& kills) {
  AlivePathCounts counts;
  counts.killed_ = &kills;
  const std::size_t n = circuit.num_gates();
  counts.arrivals0.assign(n, BigUint());
  counts.arrivals1.assign(n, BigUint());
  counts.departures0.assign(n, BigUint());
  counts.departures1.assign(n, BigUint());

  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) {
      counts.arrivals0[id] = BigUint(1);
      counts.arrivals1[id] = BigUint(1);
      continue;
    }
    for (const bool out_value : {false, true}) {
      // The on-path input carries the pre-inversion value.
      const bool in_value = out_value != inverts(gate.type);
      BigUint sum;
      for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
        const LeadId lead = gate.fanin_leads[pin];
        if (kills.killed(lead, in_value)) continue;
        sum += counts.arrivals(gate.fanins[pin], in_value);
      }
      (out_value ? counts.arrivals1 : counts.arrivals0)[id] = std::move(sum);
    }
  }

  const auto& topo = circuit.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kOutput) {
      counts.departures0[id] = BigUint(1);
      counts.departures1[id] = BigUint(1);
      continue;
    }
    for (const bool out_value : {false, true}) {
      BigUint sum;
      for (LeadId lead : gate.fanout_leads) {
        if (kills.killed(lead, out_value)) continue;
        const GateId sink = circuit.lead(lead).sink;
        const bool sink_out = out_value != inverts(circuit.gate(sink).type);
        sum += counts.departures(sink, sink_out);
      }
      (out_value ? counts.departures1 : counts.departures0)[id] =
          std::move(sum);
    }
  }

  for (GateId po : circuit.outputs())
    counts.total_alive_logical +=
        counts.arrivals0[po] + counts.arrivals1[po];
  return counts;
}

}  // namespace rd
