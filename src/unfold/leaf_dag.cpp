#include "unfold/leaf_dag.h"

#include <stdexcept>
#include <unordered_map>

namespace rd {

namespace {

struct Builder {
  const Circuit& circuit;
  Circuit dag;
  std::vector<GateId> source_gate;
  std::unordered_map<GateId, GateId> pi_clone;  // PIs are shared
  std::size_t max_gates;
  bool complete = true;

  Builder(const Circuit& c, std::size_t cap)
      : circuit(c), dag(c.name() + ".leafdag"), max_gates(cap) {}

  GateId record(GateId dag_id, GateId original) {
    if (source_gate.size() <= dag_id) source_gate.resize(dag_id + 1, kNullGate);
    source_gate[dag_id] = original;
    return dag_id;
  }

  /// Clones the tree rooted at `original`; PIs are shared, every other
  /// gate is duplicated per use.
  GateId clone(GateId original) {
    if (!complete) return kNullGate;
    const Gate& gate = circuit.gate(original);
    if (gate.type == GateType::kInput) {
      const auto it = pi_clone.find(original);
      if (it != pi_clone.end()) return it->second;
      const GateId id = record(dag.add_input(gate.name), original);
      pi_clone.emplace(original, id);
      return id;
    }
    if (dag.num_gates() >= max_gates) {
      complete = false;
      return kNullGate;
    }
    std::vector<GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (GateId fanin : gate.fanins) {
      const GateId cloned = clone(fanin);
      if (cloned == kNullGate) return kNullGate;
      fanins.push_back(cloned);
    }
    const std::string name =
        gate.name + "#" + std::to_string(dag.num_gates());
    if (gate.type == GateType::kOutput)
      return record(dag.add_output(gate.name, fanins.front()), original);
    return record(dag.add_gate(gate.type, name, std::move(fanins)), original);
  }
};

}  // namespace

LeafDag build_leaf_dag(const Circuit& circuit, GateId po,
                       std::size_t max_gates) {
  if (circuit.gate(po).type != GateType::kOutput)
    throw std::invalid_argument("build_leaf_dag requires a PO marker gate");
  Builder builder(circuit, max_gates);
  builder.clone(po);
  LeafDag result;
  result.complete = builder.complete;
  if (!builder.complete) return result;
  builder.dag.finalize();
  result.source_gate = std::move(builder.source_gate);

  // Leads correspond pin-for-pin: dag lead (sink, pin) maps to the
  // original gate's lead at the same pin.
  result.source_lead.resize(builder.dag.num_leads(), kNullLead);
  for (LeadId lead = 0; lead < builder.dag.num_leads(); ++lead) {
    const Lead& l = builder.dag.lead(lead);
    const GateId original_sink = result.source_gate[l.sink];
    result.source_lead[lead] =
        circuit.gate(original_sink).fanin_leads[l.pin];
  }
  result.dag = std::move(builder.dag);
  return result;
}

}  // namespace rd
