#include "unfold/redundancy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "paths/counting.h"
#include "sim/logic_sim.h"
#include "unfold/leaf_dag.h"
#include "unfold/xfault.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rd {

SimplifyResult propagate_constant(const Circuit& circuit, LeadId forced_lead,
                                  bool forced_value) {
  const std::size_t n = circuit.num_gates();

  // Pass 1: constants and the surviving structure, in terms of old ids.
  std::vector<Value3> constant(n, Value3::kUnknown);
  struct Surviving {
    GateType type;
    std::vector<GateId> fanins;  // old ids of surviving fanins
  };
  std::vector<Surviving> survive(n);
  bool collapsed = false;

  for (GateId id : circuit.topo_order()) {
    const Gate& gate = circuit.gate(id);
    if (gate.type == GateType::kInput) {
      survive[id] = {GateType::kInput, {}};
      continue;
    }
    auto pin_constant = [&](std::uint32_t pin) -> Value3 {
      if (gate.fanin_leads[pin] == forced_lead) return to_value3(forced_value);
      return constant[gate.fanins[pin]];
    };
    if (gate.type == GateType::kOutput || gate.type == GateType::kBuf ||
        gate.type == GateType::kNot) {
      const Value3 in = pin_constant(0);
      if (is_known(in)) {
        constant[id] = gate.type == GateType::kNot ? negate(in) : in;
        if (gate.type == GateType::kOutput) collapsed = true;
      } else {
        survive[id] = {gate.type, {gate.fanins[0]}};
      }
      continue;
    }
    // Controlling-value gate.
    const Value3 ctrl = to_value3(controlling_value(gate.type));
    std::vector<GateId> kept;
    bool is_controlled = false;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const Value3 value = pin_constant(pin);
      if (value == ctrl) {
        is_controlled = true;
        break;
      }
      if (!is_known(value)) kept.push_back(gate.fanins[pin]);
      // non-controlling constants simply drop out
    }
    if (is_controlled) {
      constant[id] = to_value3(controlled_output(gate.type));
    } else if (kept.empty()) {
      constant[id] = to_value3(noncontrolled_output(gate.type));
    } else if (kept.size() == 1) {
      survive[id] = {inverts(gate.type) ? GateType::kNot : GateType::kBuf,
                     std::move(kept)};
    } else {
      survive[id] = {gate.type, std::move(kept)};
    }
  }

  // Pass 2: liveness from surviving POs.
  std::vector<bool> live(n, false);
  std::vector<GateId> stack;
  for (GateId po : circuit.outputs()) {
    if (is_known(constant[po])) continue;  // collapsed PO: dropped
    live[po] = true;
    stack.push_back(po);
  }
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId fanin : survive[id].fanins) {
      if (!live[fanin]) {
        live[fanin] = true;
        stack.push_back(fanin);
      }
    }
  }

  // Pass 3: emit.
  SimplifyResult result;
  result.collapsed = collapsed;
  Circuit simplified(circuit.name());
  std::vector<GateId> remap(n, kNullGate);
  for (GateId id : circuit.topo_order()) {
    if (!live[id]) continue;
    const Surviving& s = survive[id];
    std::vector<GateId> fanins;
    fanins.reserve(s.fanins.size());
    for (GateId fanin : s.fanins) fanins.push_back(remap[fanin]);
    const std::string& name = circuit.gate(id).name;
    switch (s.type) {
      case GateType::kInput:
        remap[id] = simplified.add_input(name);
        break;
      case GateType::kOutput:
        remap[id] = simplified.add_output(name, fanins.front());
        break;
      default:
        remap[id] = simplified.add_gate(s.type, name, std::move(fanins));
        break;
    }
  }
  simplified.finalize();
  result.circuit = std::move(simplified);
  return result;
}

namespace {

/// Random-pattern prefilter: per (lead, killed value), a mask of
/// patterns that observe an X injected there at a PO — exact for the
/// leaf-dag's tree structure (observability propagates backwards along
/// each gate's unique fanout).  A nonzero mask rejects the kill without
/// running the complete search: if the X is observable with no other
/// kills active, it stays observable under any larger kill set (more
/// injected X only widens the undetermined region).
struct BatchDetect {
  std::vector<std::uint64_t> kill0;  // observing X when the lead is 0
  std::vector<std::uint64_t> kill1;
};

BatchDetect batch_prefilter(const Circuit& dag, Rng& rng,
                            std::size_t num_words) {
  BatchDetect result;
  result.kill0.assign(dag.num_leads(), 0);
  result.kill1.assign(dag.num_leads(), 0);
  std::vector<std::uint64_t> words(dag.inputs().size());
  std::vector<std::uint64_t> obs(dag.num_gates());
  for (std::size_t round = 0; round < num_words; ++round) {
    for (auto& word : words) word = rng.next_u64();
    const auto good = simulate64(dag, words);

    // Backward observability over the tree.
    std::fill(obs.begin(), obs.end(), 0);
    for (GateId po : dag.outputs()) obs[po] = ~std::uint64_t{0};
    const auto& topo = dag.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const GateId id = *it;
      const Gate& gate = dag.gate(id);
      for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
        std::uint64_t sensitized = obs[id];
        if (has_controlling_value(gate.type)) {
          const bool ctrl = controlling_value(gate.type);
          for (std::uint32_t other = 0; other < gate.fanins.size(); ++other) {
            if (other == pin) continue;
            const std::uint64_t nc_mask =
                ctrl ? ~good[gate.fanins[other]] : good[gate.fanins[other]];
            sensitized &= nc_mask;
          }
        }
        const LeadId lead = gate.fanin_leads[pin];
        const std::uint64_t driver_word = good[gate.fanins[pin]];
        result.kill1[lead] |= sensitized & driver_word;
        result.kill0[lead] |= sensitized & ~driver_word;
        obs[gate.fanins[pin]] |= sensitized;
      }
    }
  }
  return result;
}

}  // namespace

UnfoldResult identify_rd_unfold(const Circuit& circuit,
                                const UnfoldOptions& options) {
  UnfoldResult result;
  const PathCounts original_counts(circuit);
  result.total_logical = original_counts.total_logical();
  Rng rng(options.seed);
  Stopwatch budget;
  auto out_of_time = [&] {
    return options.max_seconds > 0 &&
           budget.elapsed_seconds() > options.max_seconds;
  };

  for (GateId po : circuit.outputs()) {
    LeafDag leaf = build_leaf_dag(circuit, po, options.max_dag_gates);
    if (!leaf.complete) {
      // Cone too large to unfold: all of its paths stay must-test.
      BigUint cone_paths = original_counts.arrivals(po);
      cone_paths *= 2u;
      result.must_test_logical += cone_paths;
      result.complete = false;
      continue;
    }
    const Circuit& dag = leaf.dag;

    KillSet kills(dag.num_leads());
    const AlivePathCounts initial = count_alive_paths(dag, kills);
    const BatchDetect prefilter =
        batch_prefilter(dag, rng, options.prefilter_words);

    // Candidate kills that survived the prefilter, heaviest first.
    struct Candidate {
      LeadId lead;
      bool value;
      BigUint weight;
    };
    std::vector<Candidate> candidates;
    for (LeadId lead = 0; lead < dag.num_leads(); ++lead) {
      for (const bool value : {false, true}) {
        const std::uint64_t mask =
            value ? prefilter.kill1[lead] : prefilter.kill0[lead];
        if (mask != 0) continue;  // kill observably unsound
        BigUint weight = initial.through(dag, lead, value);
        if (weight.is_zero()) continue;  // no paths to remove
        candidates.push_back(Candidate{lead, value, std::move(weight)});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return b.weight < a.weight;
              });

    // Greedy growth of the kill set.  A candidate rejected once stays
    // rejected: adding kills only makes an injected X easier to
    // observe, so testable-now implies testable-later (single pass).
    std::size_t examined = 0;
    bool counts_dirty = false;
    AlivePathCounts alive = count_alive_paths(dag, kills);
    for (const Candidate& candidate : candidates) {
      if (out_of_time() || examined >= options.max_candidates_per_cone) {
        result.complete = false;
        break;
      }
      if (kills.killed(candidate.lead, candidate.value)) continue;
      // Earlier kills may have already removed every path through this
      // (lead, value) pair — proving it would burn search budget for
      // zero additional RD paths.
      if (counts_dirty) {
        alive = count_alive_paths(dag, kills);
        counts_dirty = false;
      }
      if (alive.through(dag, candidate.lead, candidate.value).is_zero())
        continue;
      ++examined;
      kills.kill(candidate.lead, candidate.value);
      ++result.redundancy_checks;
      const KillVerdict verdict =
          kill_set_testable(dag, kills, options.max_check_nodes,
                            candidate.lead, candidate.value);
      if (verdict == KillVerdict::kRedundant) {
        ++result.redundancies_removed;
        counts_dirty = true;
        continue;
      }
      if (verdict == KillVerdict::kAborted) result.complete = false;
      kills.revive(candidate.lead, candidate.value);
    }

    result.must_test_logical +=
        count_alive_paths(dag, kills).total_alive_logical;
  }

  // Guard against BigUint::to_double overflowing to infinity: the naive
  // inf/inf quotient would poison rd_percent with NaN.
  const double total = result.total_logical.to_double();
  if (total > 0) {
    const BigUint rd_big = result.total_logical - result.must_test_logical;
    const double rd = rd_big.to_double();
    const double percent = std::isfinite(total) && std::isfinite(rd)
                               ? 100.0 * rd / total
                               : 100.0;
    result.rd_percent = std::isfinite(percent) ? percent : 0.0;
  }
  return result;
}

}  // namespace rd
