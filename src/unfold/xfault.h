// Kill-set consistency checking for the leaf-dag baseline.
//
// The approach of [1] identifies RD-sets with redundant *multiple*
// stuck-at faults in the leaf-dag.  The working representation here is
// a KillSet: per lead, which stable values w are "killed" — i.e. the
// logical paths carrying w across that lead are declared robust
// dependent.  A kill set is sound exactly when, for every input vector
// v, Algorithm 1 can still build a stabilizing system that avoids every
// lead whose value under v is killed; equivalently, when the output
// remains ternary-determined after injecting X on each killed lead
// whose fault-free value matches the killed polarity.
//
// kill_set_testable() decides the complement — whether some vector
// makes a primary output ternary-undetermined — with a PODEM-style
// complete branch-and-bound over PI assignments (the X analogue of
// stuck-at redundancy proof).  count_alive_paths() provides the
// per-polarity path accounting: a logical path stays must-test iff
// every lead on it is alive for the value the path carries there.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "util/biguint.h"

namespace rd {

/// Per-lead kill mask: bit 0 = value-0 paths killed, bit 1 = value-1.
class KillSet {
 public:
  explicit KillSet(std::size_t num_leads) : mask_(num_leads, 0) {}

  void kill(LeadId lead, bool value) {
    mask_[lead] |= static_cast<std::uint8_t>(value ? 2 : 1);
  }
  void revive(LeadId lead, bool value) {
    mask_[lead] &= static_cast<std::uint8_t>(value ? ~2 : ~1);
  }
  bool killed(LeadId lead, bool value) const {
    return (mask_[lead] & (value ? 2 : 1)) != 0;
  }
  bool any() const {
    for (std::uint8_t m : mask_)
      if (m != 0) return true;
    return false;
  }

 private:
  std::vector<std::uint8_t> mask_;
};

enum class KillVerdict : std::uint8_t {
  kTestable,    // some vector leaves a PO undetermined: kill set unsound
  kRedundant,   // proof: the kill set is a valid RD-set
  kAborted,     // search budget exceeded
};

/// Complete check (up to the node budget) of a kill set.
///
/// `focus_lead`/`focus_value` restrict the search to input vectors that
/// *activate* that kill (drive the lead to the killed value).  This is
/// sound — and a large speedup — exactly when the kill set minus the
/// focused pair is already proven redundant: any counterexample to the
/// grown set must then involve the new X source.  The greedy loop in
/// identify_rd_unfold maintains that invariant.
KillVerdict kill_set_testable(const Circuit& circuit, const KillSet& kills,
                              std::uint64_t max_nodes = 1u << 22,
                              LeadId focus_lead = kNullLead,
                              bool focus_value = false);

/// Per-polarity structural path accounting under a kill set.
struct AlivePathCounts {
  /// arrivals[gate][v]: partial paths from a PI to `gate` whose stable
  /// value at the gate output is v, using only alive (lead, value)
  /// pairs.
  std::vector<BigUint> arrivals0, arrivals1;
  std::vector<BigUint> departures0, departures1;
  BigUint total_alive_logical;

  const BigUint& arrivals(GateId id, bool value) const {
    return value ? arrivals1[id] : arrivals0[id];
  }
  const BigUint& departures(GateId id, bool value) const {
    return value ? departures1[id] : departures0[id];
  }

  /// Alive logical paths through `lead` carrying value `value` there
  /// (zero when that (lead, value) pair is itself killed).
  BigUint through(const Circuit& circuit, LeadId lead, bool value) const;

  /// Kill set the counts were computed under (set by count_alive_paths;
  /// must outlive this object).
  const KillSet* killed_ = nullptr;
};

AlivePathCounts count_alive_paths(const Circuit& circuit,
                                  const KillSet& kills);

}  // namespace rd
