// Leaf-dag construction: the "unfolded" version of an output cone in
// which fanout is only allowed at the primary inputs (Section II).
//
// The approach of Lam et al. [1] — the baseline the paper compares
// against in Table III — reduces RD-set identification to finding
// redundant stuck-at faults in this structure.  Every internal lead of
// the leaf-dag lies on a *unique* lead-to-output chain, so paths map
// 1:1 onto original cone paths, and the size is exponential in the
// amount of reconvergent fanout; construction is therefore guarded by a
// gate budget.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/circuit.h"

namespace rd {

struct LeafDag {
  Circuit dag;

  /// dag GateId -> original circuit GateId.
  std::vector<GateId> source_gate;

  /// dag LeadId -> original circuit LeadId.
  std::vector<LeadId> source_lead;

  /// False if the gate budget stopped the unfolding.
  bool complete = true;
};

/// Unfolds the cone of PO marker `po`.  Throws on a non-PO argument.
LeafDag build_leaf_dag(const Circuit& circuit, GateId po,
                       std::size_t max_gates = 1u << 20);

}  // namespace rd
