// RD-set identification by gradual redundancy removal on the leaf-dag —
// a from-the-literature reimplementation of the approach of Lam,
// Saldanha, Brayton & Sangiovanni-Vincentelli [1] that the paper uses
// as its quality baseline (Table III).
//
// Per output cone: build the leaf-dag, then greedily grow a per-
// polarity *kill set* — (lead, stable value) pairs whose logical paths
// are declared robust dependent.  A candidate kill is accepted only
// when a complete search (random-pattern prefilter + PODEM-style
// branch-and-bound, src/unfold/xfault.h) proves that every primary
// output remains ternary-determined with X injected on all killed
// leads; by the stabilizing-system theory this is exactly the
// condition that Algorithm 1 can still stabilize every input vector
// while avoiding the killed leads, i.e. that a complete stabilizing
// assignment exists whose LP(σ) misses every killed path.  This is the
// per-transition refinement of [1]'s redundant-multiple-stuck-at-fault
// formulation: a plain structural removal of a redundant line would
// also discard the opposite-polarity paths through it, which are in
// general NOT robust dependent (an OR gate settling to 0 needs every
// input settled).
#pragma once

#include <cstdint>

#include "netlist/circuit.h"
#include "util/biguint.h"

namespace rd {

struct UnfoldOptions {
  /// Leaf-dag gate budget per cone; cones exceeding it are left
  /// unprocessed (their paths all count as must-test).
  std::size_t max_dag_gates = 1u << 20;

  /// Search budget per kill-set redundancy proof; aborted proofs count
  /// as testable (the kill is conservatively rejected).
  std::uint64_t max_check_nodes = 1u << 20;

  /// 64-pattern words for the random prefilter.
  std::size_t prefilter_words = 4;

  /// At most this many prefilter-surviving candidates get the full
  /// redundancy proof per cone (they are tried heaviest-first, so the
  /// cap trades tail quality for time).
  std::size_t max_candidates_per_cone = static_cast<std::size_t>(-1);

  /// Wall-clock budget in seconds (0 = unlimited).  The greedy loop
  /// stops accepting new kills once exceeded; everything found so far
  /// remains a sound RD-set, so the result is a valid (if smaller)
  /// answer flagged as incomplete.
  double max_seconds = 0.0;

  std::uint64_t seed = 1;
};

struct UnfoldResult {
  BigUint total_logical;      // logical paths of the original circuit
  BigUint must_test_logical;  // logical paths surviving in the leaf-dags
  double rd_percent = 0.0;
  bool complete = true;       // false if any cone hit a budget
  std::uint64_t redundancy_checks = 0;
  std::uint64_t redundancies_removed = 0;
};

/// Runs the baseline over every output cone of `circuit`.
UnfoldResult identify_rd_unfold(const Circuit& circuit,
                                const UnfoldOptions& options = {});

/// Constant-propagation helper (exposed for tests): returns the circuit
/// with `lead` replaced by the constant `value`, simplified, restricted
/// to the logic still feeding its POs.  Gate/pin drops preserve the
/// path-embedding property (a path of the result maps to a path of the
/// input).  If the output collapses to a constant the result has the
/// PO marker driven by a single surviving PI through no logic — the
/// caller detects this via must-test counting (such cones contribute
/// zero testable paths); `collapsed` reports it explicitly.
struct SimplifyResult {
  Circuit circuit;
  bool collapsed = false;  // some PO became constant
};
SimplifyResult propagate_constant(const Circuit& circuit, LeadId lead,
                                  bool value);

}  // namespace rd
